package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndLen(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 127, 128, 1000} {
		v := New(n)
		if v.Len() != n {
			t.Errorf("New(%d).Len() = %d", n, v.Len())
		}
		if v.Count() != 0 {
			t.Errorf("New(%d).Count() = %d, want 0", n, v.Count())
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestSetGet(t *testing.T) {
	v := New(130)
	idx := []int{0, 1, 63, 64, 65, 127, 128, 129}
	for _, i := range idx {
		v.Set(i, true)
	}
	for _, i := range idx {
		if !v.Get(i) {
			t.Errorf("bit %d not set", i)
		}
	}
	if v.Count() != len(idx) {
		t.Errorf("Count = %d, want %d", v.Count(), len(idx))
	}
	for _, i := range idx {
		v.Set(i, false)
	}
	if v.Count() != 0 {
		t.Errorf("Count after clearing = %d, want 0", v.Count())
	}
}

func TestGetOutOfRangePanics(t *testing.T) {
	v := New(8)
	for _, i := range []int{-1, 8, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Get(%d) did not panic", i)
				}
			}()
			v.Get(i)
		}()
	}
}

func TestParse(t *testing.T) {
	v, err := Parse("10110")
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{true, false, true, true, false}
	for i, w := range want {
		if v.Get(i) != w {
			t.Errorf("bit %d = %v, want %v", i, v.Get(i), w)
		}
	}
	if _, err := Parse("10x"); err == nil {
		t.Error("Parse accepted invalid character")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse did not panic on bad input")
		}
	}()
	MustParse("2")
}

func TestStringRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(200)
		v := New(n)
		for i := 0; i < n; i++ {
			v.Set(i, rng.Intn(2) == 1)
		}
		w := MustParse(v.String())
		if !v.Equal(w) {
			t.Fatalf("round trip failed for %q", v.String())
		}
	}
}

func TestRank(t *testing.T) {
	v := MustParse("1101001")
	wantRank := []int{0, 1, 2, 2, 3, 3, 3, 4}
	for i, w := range wantRank {
		if got := v.Rank(i); got != w {
			t.Errorf("Rank(%d) = %d, want %d", i, got, w)
		}
	}
}

func TestRankMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(300)
		v := New(n)
		for i := 0; i < n; i++ {
			v.Set(i, rng.Intn(2) == 1)
		}
		c := 0
		for i := 0; i <= n; i++ {
			if got := v.Rank(i); got != c {
				t.Fatalf("Rank(%d) = %d, want %d", i, got, c)
			}
			if i < n && v.Get(i) {
				c++
			}
		}
	}
}

func TestPrefixCounts(t *testing.T) {
	v := MustParse("01101")
	want := []int{0, 1, 2, 2, 3}
	got := v.PrefixCounts()
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("prefix[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if New(0).PrefixCounts() != nil {
		t.Error("empty vector should return nil prefix counts")
	}
}

func TestOnes(t *testing.T) {
	v := MustParse("0110010")
	got := v.Ones()
	want := []int{1, 2, 5}
	if len(got) != len(want) {
		t.Fatalf("Ones = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ones = %v, want %v", got, want)
		}
	}
}

func TestIsSorted(t *testing.T) {
	cases := map[string]bool{
		"":        true,
		"0":       true,
		"1":       true,
		"10":      true,
		"1110000": true,
		"01":      false,
		"1101":    false,
		"0001":    false,
	}
	for s, want := range cases {
		if got := MustParse(s).IsSorted(); got != want {
			t.Errorf("IsSorted(%q) = %v, want %v", s, got, want)
		}
	}
}

func TestNearsortedness(t *testing.T) {
	cases := map[string]int{
		"":         0,
		"1":        0,
		"0":        0,
		"110":      0,
		"101":      1, // the 0 belongs at slot 2, is at 1; the second 1 at slot 1, is at 2
		"011":      2,
		"0101":     2,
		"0011":     2,
		"00111":    3,
		"01010101": 4,
	}
	for s, want := range cases {
		if got := MustParse(s).Nearsortedness(); got != want {
			t.Errorf("Nearsortedness(%q) = %d, want %d", s, got, want)
		}
	}
}

// TestNearsortednessPaperExample checks the paper's §3 example: the
// sequence 5,3,6,1,4,2 is 2-nearsorted. We translate to 0/1 by
// thresholding at each value, since a sequence of distinct keys is
// ε-nearsorted iff each 0/1 threshold projection is (a standard 0-1
// principle argument).
func TestNearsortednessPaperExample(t *testing.T) {
	seq := []int{5, 3, 6, 1, 4, 2}
	maxEps := 0
	for thr := 1; thr <= 6; thr++ {
		v := New(len(seq))
		for i, x := range seq {
			v.Set(i, x >= thr)
		}
		if e := v.Nearsortedness(); e > maxEps {
			maxEps = e
		}
	}
	if maxEps != 2 {
		t.Errorf("max threshold nearsortedness = %d, want 2", maxEps)
	}
}

func TestDirtyWindow(t *testing.T) {
	cases := []struct {
		s      string
		lo, hi int
	}{
		{"", 0, 0},
		{"1100", 2, 2},
		{"1010", 1, 3},
		{"0011", 0, 4},
		{"111", 3, 3},
		{"000", 0, 0},
		{"1101100", 2, 5},
	}
	for _, c := range cases {
		lo, hi := MustParse(c.s).DirtyWindow()
		if lo != c.lo || hi != c.hi {
			t.Errorf("DirtyWindow(%q) = (%d,%d), want (%d,%d)", c.s, lo, hi, c.lo, c.hi)
		}
	}
}

// Property: DirtyLen ≤ 2·Nearsortedness (Lemma 1, forward direction)
// and the clean prefix has ≥ k−ε ones.
func TestLemma1Property(t *testing.T) {
	f := func(raw []bool) bool {
		v := FromBools(raw)
		eps := v.Nearsortedness()
		lo, hi := v.DirtyWindow()
		k := v.Count()
		if hi-lo > 2*eps {
			return false
		}
		if lo < k-eps {
			return false
		}
		if v.Len()-hi < v.Len()-k-eps {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestSorted(t *testing.T) {
	v := MustParse("010110")
	s := v.Sorted()
	if s.String() != "111000" {
		t.Errorf("Sorted = %q, want 111000", s.String())
	}
	if !s.IsSorted() || s.Count() != v.Count() {
		t.Error("Sorted output is not a sorted rearrangement")
	}
}

func TestPermute(t *testing.T) {
	v := MustParse("1100")
	w := v.Permute([]int{3, 2, 1, 0})
	if w.String() != "0011" {
		t.Errorf("Permute reverse = %q, want 0011", w.String())
	}
}

func TestPermuteRejectsNonPermutation(t *testing.T) {
	v := MustParse("10")
	for _, perm := range [][]int{{0, 0}, {0, 2}, {0}, {-1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Permute(%v) did not panic", perm)
				}
			}()
			v.Permute(perm)
		}()
	}
}

func TestConcat(t *testing.T) {
	v := Concat(MustParse("10"), MustParse(""), MustParse("011"))
	if v.String() != "10011" {
		t.Errorf("Concat = %q, want 10011", v.String())
	}
}

func TestCloneIndependence(t *testing.T) {
	v := MustParse("101")
	w := v.Clone()
	w.Set(1, true)
	if v.Get(1) {
		t.Error("Clone shares storage with original")
	}
	if !w.Get(1) {
		t.Error("Clone did not accept Set")
	}
}

func TestBitsAndFromBits(t *testing.T) {
	v := MustParse("0101")
	bs := v.Bits()
	w := FromBits(bs)
	if !v.Equal(w) {
		t.Error("Bits/FromBits round trip failed")
	}
}

// Property: Permute by a random permutation preserves Count and
// Nearsortedness of the sorted vector is 0.
func TestPermutePreservesCount(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(100)
		v := New(n)
		for i := 0; i < n; i++ {
			v.Set(i, rng.Intn(2) == 1)
		}
		perm := rng.Perm(n)
		if got := v.Permute(perm).Count(); got != v.Count() {
			t.Fatalf("Permute changed count: %d -> %d", v.Count(), got)
		}
	}
}
