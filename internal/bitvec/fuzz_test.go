package bitvec

import "testing"

func FuzzParseRoundTrip(f *testing.F) {
	f.Add("")
	f.Add("0")
	f.Add("10110")
	f.Add("111000")
	f.Add("x")
	f.Fuzz(func(t *testing.T, s string) {
		v, err := Parse(s)
		if err != nil {
			return // invalid characters are fine to reject
		}
		if v.Len() != len(s) {
			t.Fatalf("length %d != %d", v.Len(), len(s))
		}
		if v.String() != s {
			t.Fatalf("round trip %q != %q", v.String(), s)
		}
		// Invariants tie together the measurement functions.
		eps := v.Nearsortedness()
		if err := checkLemma1Shape(v, eps); err != nil {
			t.Fatal(err)
		}
		if v.IsSorted() != (eps == 0) {
			t.Fatal("IsSorted disagrees with Nearsortedness")
		}
		if got := v.Sorted().Count(); got != v.Count() {
			t.Fatal("Sorted changed count")
		}
	})
}

// checkLemma1Shape is the Lemma 1 structure predicate, local to avoid
// an import cycle with nearsort.
func checkLemma1Shape(v *Vector, eps int) error {
	k := v.Count()
	lo, hi := v.DirtyWindow()
	switch {
	case lo < k-eps:
		return errShape
	case hi-lo > 2*eps:
		return errShape
	case v.Len()-hi < v.Len()-k-eps:
		return errShape
	}
	return nil
}

var errShape = &shapeErr{}

type shapeErr struct{}

func (*shapeErr) Error() string { return "Lemma 1 structure violated" }

func FuzzRankConsistency(f *testing.F) {
	f.Add([]byte{0xF0, 0x0F})
	f.Add([]byte{})
	f.Add([]byte{0xAA})
	f.Fuzz(func(t *testing.T, raw []byte) {
		v := New(len(raw) * 8)
		for i := 0; i < v.Len(); i++ {
			v.Set(i, raw[i/8]&(1<<uint(i%8)) != 0)
		}
		prefix := v.PrefixCounts()
		for i := 0; i <= v.Len(); i++ {
			want := 0
			if i > 0 {
				want = prefix[i-1]
			}
			if got := v.Rank(i); got != want {
				t.Fatalf("Rank(%d) = %d, want %d", i, got, want)
			}
		}
		if v.Len() > 0 && prefix[v.Len()-1] != v.Count() {
			t.Fatal("final prefix != Count")
		}
	})
}
