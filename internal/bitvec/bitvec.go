// Package bitvec provides dense 0/1 vectors with the rank, sortedness,
// and nearsortedness measurements used throughout the concentrator
// library.
//
// Throughout this repository, following §2 of the paper, a 0/1 sequence
// is "sorted" when it is in NONINCREASING order: all 1s (valid bits)
// precede all 0s (invalid bits).
package bitvec

import (
	"fmt"
	"math/bits"
	"strings"
)

// Vector is a fixed-length dense vector of bits.
// The zero value is an empty vector of length 0.
type Vector struct {
	n     int
	words []uint64
}

// New returns an all-zero vector of length n. It panics if n is negative.
func New(n int) *Vector {
	if n < 0 {
		panic(fmt.Sprintf("bitvec: negative length %d", n))
	}
	return &Vector{n: n, words: make([]uint64, (n+63)/64)}
}

// FromBools builds a vector whose bit i is 1 iff bs[i] is true.
func FromBools(bs []bool) *Vector {
	v := New(len(bs))
	for i, b := range bs {
		if b {
			v.Set(i, true)
		}
	}
	return v
}

// FromBits builds a vector from a slice of 0/1 bytes. Any nonzero byte
// counts as a 1.
func FromBits(bs []byte) *Vector {
	v := New(len(bs))
	for i, b := range bs {
		if b != 0 {
			v.Set(i, true)
		}
	}
	return v
}

// Parse builds a vector from a string of '0' and '1' characters.
// It returns an error on any other character.
func Parse(s string) (*Vector, error) {
	v := New(len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '1':
			v.Set(i, true)
		case '0':
			// already zero
		default:
			return nil, fmt.Errorf("bitvec: invalid character %q at index %d", s[i], i)
		}
	}
	return v, nil
}

// MustParse is Parse but panics on error; intended for tests and
// constants.
func MustParse(s string) *Vector {
	v, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return v
}

// Len reports the number of bits in v.
func (v *Vector) Len() int { return v.n }

// Get reports bit i. It panics if i is out of range.
func (v *Vector) Get(i int) bool {
	v.check(i)
	return v.words[i>>6]&(1<<uint(i&63)) != 0
}

// Bit reports bit i as a byte (0 or 1).
func (v *Vector) Bit(i int) byte {
	if v.Get(i) {
		return 1
	}
	return 0
}

// Set sets bit i to b. It panics if i is out of range.
func (v *Vector) Set(i int, b bool) {
	v.check(i)
	if b {
		v.words[i>>6] |= 1 << uint(i&63)
	} else {
		v.words[i>>6] &^= 1 << uint(i&63)
	}
}

func (v *Vector) check(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitvec: index %d out of range [0,%d)", i, v.n))
	}
}

// Words exposes the vector's backing words for word-parallel kernels.
// Bit i of the vector is bit i&63 of word i>>6. Bits at positions ≥
// Len() in the last word are always zero; callers that write through
// the returned slice must preserve that invariant.
func (v *Vector) Words() []uint64 { return v.words }

// WordLen returns the number of backing words, ⌈Len()/64⌉.
func (v *Vector) WordLen() int { return len(v.words) }

// OnesInWord returns the number of 1 bits in backing word w — the
// word-parallel building block for rank and scatter kernels. It panics
// if w is out of range.
func (v *Vector) OnesInWord(w int) int {
	return bits.OnesCount64(v.words[w])
}

// CopyFrom copies src's bits into v in place, without allocating. The
// two vectors must have the same length; it panics otherwise.
func (v *Vector) CopyFrom(src *Vector) {
	if v.n != src.n {
		panic(fmt.Sprintf("bitvec: CopyFrom length mismatch %d != %d", src.n, v.n))
	}
	copy(v.words, src.words)
}

// Reset clears every bit in place.
func (v *Vector) Reset() {
	for i := range v.words {
		v.words[i] = 0
	}
}

// Count returns the number of 1 bits (the k of the paper's lemmas).
func (v *Vector) Count() int {
	c := 0
	for _, w := range v.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Rank returns the number of 1 bits in positions [0, i); Rank(Len())
// equals Count().
func (v *Vector) Rank(i int) int {
	if i < 0 || i > v.n {
		panic(fmt.Sprintf("bitvec: rank index %d out of range [0,%d]", i, v.n))
	}
	c := 0
	full := i >> 6
	for w := 0; w < full; w++ {
		c += bits.OnesCount64(v.words[w])
	}
	if rem := i & 63; rem != 0 {
		c += bits.OnesCount64(v.words[full] & ((1 << uint(rem)) - 1))
	}
	return c
}

// PrefixCounts returns the inclusive prefix-sum slice p with
// p[i] = Rank(i+1); len(p) == Len(). For an empty vector it returns nil.
func (v *Vector) PrefixCounts() []int {
	if v.n == 0 {
		return nil
	}
	p := make([]int, v.n)
	c := 0
	for i := 0; i < v.n; i++ {
		if v.Get(i) {
			c++
		}
		p[i] = c
	}
	return p
}

// Ones returns the positions of the 1 bits in increasing order.
func (v *Vector) Ones() []int {
	return v.OnesInto(make([]int, 0, v.Count()))
}

// OnesInto appends the positions of the 1 bits, in increasing order, to
// dst[:0] and returns the extended slice. It allocates only when dst's
// capacity is insufficient, so a reused buffer makes repeated calls
// allocation-free. The scan is word-parallel: zero words cost one
// comparison each.
func (v *Vector) OnesInto(dst []int) []int {
	dst = dst[:0]
	for wi, w := range v.words {
		base := wi << 6
		for w != 0 {
			dst = append(dst, base+bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	return dst
}

// Clone returns a copy of v.
func (v *Vector) Clone() *Vector {
	w := New(v.n)
	copy(w.words, v.words)
	return w
}

// Equal reports whether v and w have the same length and bits.
func (v *Vector) Equal(w *Vector) bool {
	if v.n != w.n {
		return false
	}
	for i := range v.words {
		if v.words[i] != w.words[i] {
			return false
		}
	}
	return true
}

// String renders the vector as a string of '0' and '1' characters.
func (v *Vector) String() string {
	var sb strings.Builder
	sb.Grow(v.n)
	for i := 0; i < v.n; i++ {
		if v.Get(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// Bits returns the vector as a slice of 0/1 bytes.
func (v *Vector) Bits() []byte {
	bs := make([]byte, v.n)
	for i := 0; i < v.n; i++ {
		if v.Get(i) {
			bs[i] = 1
		}
	}
	return bs
}

// IsSorted reports whether the vector is in nonincreasing order, i.e.
// all 1s precede all 0s — the "fully sorted" condition of §2.
func (v *Vector) IsSorted() bool {
	return v.Nearsortedness() == 0
}

// Nearsortedness returns the smallest ε for which the vector is
// ε-nearsorted: matching the i-th 1 (in position order) to sorted slot
// i−1 and the j-th 0 to sorted slot k+j−1, it is the maximum
// displacement of any element. A fully sorted vector returns 0.
func (v *Vector) Nearsortedness() int {
	k := v.Count()
	eps := 0
	ones, zeros := 0, 0
	for i := 0; i < v.n; i++ {
		if v.Get(i) {
			// The ones-th 1 (0-indexed) belongs at slot ones.
			if d := i - ones; d > eps {
				eps = d
			}
			ones++
		} else {
			// The zeros-th 0 (0-indexed) belongs at slot k+zeros.
			if d := (k + zeros) - i; d > eps {
				eps = d
			}
			zeros++
		}
	}
	return eps
}

// DirtyWindow returns the half-open index range [lo, hi) of the minimal
// window outside which the vector is clean: positions [0, lo) are all
// 1s and positions [hi, Len()) are all 0s. A fully sorted vector has
// lo == hi == Count(). An all-clean empty vector returns (0, 0).
func (v *Vector) DirtyWindow() (lo, hi int) {
	lo = 0
	for lo < v.n && v.Get(lo) {
		lo++
	}
	hi = v.n
	for hi > lo && !v.Get(hi-1) {
		hi--
	}
	return lo, hi
}

// DirtyLen returns hi−lo of DirtyWindow: the length of the dirty
// region. Lemma 1 bounds this by 2ε for an ε-nearsorted vector.
func (v *Vector) DirtyLen() int {
	lo, hi := v.DirtyWindow()
	return hi - lo
}

// Concat returns the concatenation of the given vectors.
func Concat(vs ...*Vector) *Vector {
	total := 0
	for _, v := range vs {
		total += v.n
	}
	out := New(total)
	at := 0
	for _, v := range vs {
		for i := 0; i < v.n; i++ {
			if v.Get(i) {
				out.Set(at+i, true)
			}
		}
		at += v.n
	}
	return out
}

// Sorted returns the fully sorted (nonincreasing) rearrangement of v:
// Count() ones followed by zeros.
func (v *Vector) Sorted() *Vector {
	return v.SortedInto(New(v.n))
}

// SortedInto writes the fully sorted rearrangement of v into dst (same
// length, in place, no allocation) and returns dst. The write is
// word-parallel: one prefix-mask store per word.
func (v *Vector) SortedInto(dst *Vector) *Vector {
	if dst.n != v.n {
		panic(fmt.Sprintf("bitvec: SortedInto length mismatch %d != %d", dst.n, v.n))
	}
	k := v.Count()
	for w := range dst.words {
		lo := w << 6
		switch {
		case k >= lo+64:
			dst.words[w] = ^uint64(0)
		case k > lo:
			dst.words[w] = 1<<uint(k-lo) - 1
		default:
			dst.words[w] = 0
		}
	}
	return dst
}

// Permute returns the vector w with w[perm[i]] = v[i]. perm must be a
// permutation of [0, Len()); it panics otherwise.
func (v *Vector) Permute(perm []int) *Vector {
	if len(perm) != v.n {
		panic(fmt.Sprintf("bitvec: permutation length %d != vector length %d", len(perm), v.n))
	}
	out := New(v.n)
	seen := make([]bool, v.n)
	for i, p := range perm {
		if p < 0 || p >= v.n || seen[p] {
			panic(fmt.Sprintf("bitvec: perm is not a permutation (entry %d -> %d)", i, p))
		}
		seen[p] = true
		if v.Get(i) {
			out.Set(p, true)
		}
	}
	return out
}
