package bitvec

import (
	"math/bits"
	"math/rand"
	"reflect"
	"testing"
)

func TestWordsLayout(t *testing.T) {
	cases := []struct {
		s     string
		words []uint64
	}{
		{"", []uint64{}},
		{"1", []uint64{1}},
		{"01", []uint64{2}},
		{"10000000", []uint64{1}},
		{"0000000000000000000000000000000000000000000000000000000000000001", []uint64{1 << 63}},
		{"00000000000000000000000000000000000000000000000000000000000000001", []uint64{0, 1}},
	}
	for _, c := range cases {
		v := MustParse(c.s)
		got := v.Words()
		if len(got) != len(c.words) {
			t.Fatalf("Words(%q): %d words, want %d", c.s, len(got), len(c.words))
		}
		for i := range got {
			if got[i] != c.words[i] {
				t.Errorf("Words(%q)[%d] = %#x, want %#x", c.s, i, got[i], c.words[i])
			}
		}
		if v.WordLen() != len(c.words) {
			t.Errorf("WordLen(%q) = %d, want %d", c.s, v.WordLen(), len(c.words))
		}
	}
}

// TestWordsSpareBitsStayZero checks the documented invariant that bits
// beyond Len() in the last backing word are zero after any Set churn.
func TestWordsSpareBitsStayZero(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 5, 63, 64, 65, 100, 127, 130} {
		v := New(n)
		for op := 0; op < 200; op++ {
			v.Set(rng.Intn(n), rng.Intn(2) == 0)
		}
		last := v.Words()[v.WordLen()-1]
		if rem := n & 63; rem != 0 && last>>uint(rem) != 0 {
			t.Errorf("n=%d: spare bits set in last word %#x", n, last)
		}
	}
}

func TestOnesInWordMatchesPerBit(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 64, 65, 200, 1024} {
		v := randomVector(rng, n, 0.5)
		for w := 0; w < v.WordLen(); w++ {
			want := 0
			for i := w * 64; i < (w+1)*64 && i < n; i++ {
				if v.Get(i) {
					want++
				}
			}
			if got := v.OnesInWord(w); got != want {
				t.Errorf("n=%d OnesInWord(%d) = %d, want %d", n, w, got, want)
			}
		}
	}
}

func TestCopyFrom(t *testing.T) {
	src := MustParse("1011001110001")
	dst := New(src.Len())
	dst.Set(1, true)
	dst.CopyFrom(src)
	if !dst.Equal(src) {
		t.Fatalf("CopyFrom: got %s, want %s", dst, src)
	}
	// In place: mutating src afterwards must not affect dst.
	src.Set(0, false)
	if !dst.Get(0) {
		t.Fatal("CopyFrom aliased the source words")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("CopyFrom length mismatch did not panic")
		}
	}()
	dst.CopyFrom(New(dst.Len() + 1))
}

func TestReset(t *testing.T) {
	v := MustParse("111111")
	v.Reset()
	if v.Count() != 0 || v.Len() != 6 {
		t.Fatalf("Reset: count %d len %d", v.Count(), v.Len())
	}
}

func TestOnesIntoReusesBuffer(t *testing.T) {
	v := MustParse("10100101")
	buf := make([]int, 0, v.Len())
	got := v.OnesInto(buf)
	want := []int{0, 2, 5, 7}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("OnesInto = %v, want %v", got, want)
	}
	if allocs := testing.AllocsPerRun(100, func() { buf = v.OnesInto(buf) }); allocs != 0 {
		t.Errorf("OnesInto with sufficient capacity allocated %v times", allocs)
	}
}

// onesPerBit is the legacy bit-at-a-time reference for the fuzz parity
// checks below.
func onesPerBit(v *Vector) []int {
	var ps []int
	for i := 0; i < v.Len(); i++ {
		if v.Get(i) {
			ps = append(ps, i)
		}
	}
	return ps
}

func randomVector(rng *rand.Rand, n int, load float64) *Vector {
	v := New(n)
	for i := 0; i < n; i++ {
		if rng.Float64() < load {
			v.Set(i, true)
		}
	}
	return v
}

// FuzzWordParity drives the word-level accessors against the
// bit-at-a-time path on arbitrary bit strings.
func FuzzWordParity(f *testing.F) {
	f.Add("")
	f.Add("1")
	f.Add("10100101")
	f.Add("0000000000000000000000000000000000000000000000000000000000000000110")
	f.Fuzz(func(t *testing.T, s string) {
		v, err := Parse(s)
		if err != nil {
			t.Skip()
		}
		// Words reconstructs the exact bit pattern.
		total := 0
		for w, word := range v.Words() {
			for b := 0; b < 64; b++ {
				i := w*64 + b
				bit := word&(1<<uint(b)) != 0
				if i < v.Len() {
					if bit != v.Get(i) {
						t.Fatalf("word %d bit %d disagrees with Get(%d)", w, b, i)
					}
				} else if bit {
					t.Fatalf("spare bit %d set beyond Len %d", i, v.Len())
				}
			}
			if v.OnesInWord(w) != bits.OnesCount64(word) {
				t.Fatalf("OnesInWord(%d) mismatch", w)
			}
			total += v.OnesInWord(w)
		}
		if total != v.Count() {
			t.Fatalf("sum of OnesInWord %d != Count %d", total, v.Count())
		}
		if got, want := v.OnesInto(nil), onesPerBit(v); !reflect.DeepEqual(got, want) && !(len(got) == 0 && len(want) == 0) {
			t.Fatalf("OnesInto %v != per-bit ones %v", got, want)
		}
		// CopyFrom round-trips through a dirty destination.
		dst := New(v.Len())
		for i := 0; i < dst.Len(); i += 2 {
			dst.Set(i, true)
		}
		dst.CopyFrom(v)
		if !dst.Equal(v) {
			t.Fatalf("CopyFrom: %s != %s", dst, v)
		}
	})
}
