package flow

import (
	"math/rand"
	"testing"
)

func TestTrivialFlows(t *testing.T) {
	g := NewGraph(2)
	g.AddEdge(0, 1, 5)
	if f := g.MaxFlow(0, 1); f != 5 {
		t.Errorf("single edge flow = %d, want 5", f)
	}
	if f := g.MaxFlow(1, 1); f != 0 {
		t.Errorf("s==t flow = %d, want 0", f)
	}
}

func TestSeriesParallel(t *testing.T) {
	// s →(3)→ a →(2)→ t and s →(1)→ b →(4)→ t: max flow = 3.
	g := NewGraph(4)
	g.AddEdge(0, 1, 3)
	g.AddEdge(1, 3, 2)
	g.AddEdge(0, 2, 1)
	g.AddEdge(2, 3, 4)
	if f := g.MaxFlow(0, 3); f != 3 {
		t.Errorf("flow = %d, want 3", f)
	}
}

func TestClassicExample(t *testing.T) {
	// The standard CLRS-style example with a 23 max flow.
	g := NewGraph(6)
	g.AddEdge(0, 1, 16)
	g.AddEdge(0, 2, 13)
	g.AddEdge(1, 2, 10)
	g.AddEdge(2, 1, 4)
	g.AddEdge(1, 3, 12)
	g.AddEdge(3, 2, 9)
	g.AddEdge(2, 4, 14)
	g.AddEdge(4, 3, 7)
	g.AddEdge(3, 5, 20)
	g.AddEdge(4, 5, 4)
	if f := g.MaxFlow(0, 5); f != 23 {
		t.Errorf("flow = %d, want 23", f)
	}
}

func TestFlowConservationAndCapacity(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 20; trial++ {
		n := 8 + rng.Intn(12)
		g := NewGraph(n)
		type rec struct{ id, u, v, c int }
		var recs []rec
		for e := 0; e < 3*n; e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			c := rng.Intn(10)
			recs = append(recs, rec{g.AddEdge(u, v, c), u, v, c})
		}
		total := g.MaxFlow(0, n-1)
		net := make([]int, n)
		for _, r := range recs {
			f := g.Flow(r.id)
			if f < 0 || f > r.c {
				t.Fatalf("edge flow %d outside [0,%d]", f, r.c)
			}
			net[r.u] -= f
			net[r.v] += f
		}
		for v := 1; v < n-1; v++ {
			if net[v] != 0 {
				t.Fatalf("conservation violated at node %d: %d", v, net[v])
			}
		}
		if net[n-1] != total || net[0] != -total {
			t.Fatalf("terminal imbalance: src %d sink %d total %d", net[0], net[n-1], total)
		}
	}
}

// Max-flow equals min-cut on random unit-capacity DAGs, checked against
// a brute-force cut enumeration for small graphs.
func TestMaxFlowMinCutSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for trial := 0; trial < 30; trial++ {
		n := 4 + rng.Intn(4)
		type E struct{ u, v int }
		var es []E
		g := NewGraph(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Intn(2) == 1 {
					es = append(es, E{u, v})
					g.AddEdge(u, v, 1)
				}
			}
		}
		got := g.MaxFlow(0, n-1)
		// Brute-force min cut over subsets containing 0 but not n−1.
		best := len(es) + 1
		for mask := 0; mask < 1<<uint(n); mask++ {
			if mask&1 == 0 || mask&(1<<uint(n-1)) != 0 {
				continue
			}
			cut := 0
			for _, e := range es {
				if mask&(1<<uint(e.u)) != 0 && mask&(1<<uint(e.v)) == 0 {
					cut++
				}
			}
			if cut < best {
				best = cut
			}
		}
		if got != best {
			t.Fatalf("trial %d: maxflow %d != mincut %d", trial, got, best)
		}
	}
}

func TestReset(t *testing.T) {
	g := NewGraph(2)
	id := g.AddEdge(0, 1, 3)
	g.MaxFlow(0, 1)
	if g.Flow(id) != 3 {
		t.Fatal("flow not recorded")
	}
	g.Reset()
	if g.Flow(id) != 0 {
		t.Fatal("Reset did not clear flow")
	}
	if f := g.MaxFlow(0, 1); f != 3 {
		t.Fatalf("flow after reset = %d", f)
	}
}

func TestValidationPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewGraph(-1) },
		func() { NewGraph(2).AddEdge(0, 2, 1) },
		func() { NewGraph(2).AddEdge(0, 1, -1) },
		func() { MaxBipartiteMatching(1, 1, [][2]int{{0, 5}}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestMaxBipartiteMatching(t *testing.T) {
	// Perfect matching on K_{3,3}.
	var pairs [][2]int
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			pairs = append(pairs, [2]int{i, j})
		}
	}
	if m := MaxBipartiteMatching(3, 3, pairs); m != 3 {
		t.Errorf("K33 matching = %d, want 3", m)
	}
	// A graph with a Hall violator: left {0,1,2} all only adjacent to
	// right {0}.
	if m := MaxBipartiteMatching(3, 2, [][2]int{{0, 0}, {1, 0}, {2, 0}}); m != 1 {
		t.Errorf("starved matching = %d, want 1", m)
	}
}

func TestMatchingAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	for trial := 0; trial < 40; trial++ {
		l, r := 2+rng.Intn(4), 2+rng.Intn(4)
		var pairs [][2]int
		adj := make([][]bool, l)
		for i := range adj {
			adj[i] = make([]bool, r)
			for j := 0; j < r; j++ {
				if rng.Intn(2) == 1 {
					adj[i][j] = true
					pairs = append(pairs, [2]int{i, j})
				}
			}
		}
		got := MaxBipartiteMatching(l, r, pairs)
		want := bruteMatch(adj, 0, 0)
		if got != want {
			t.Fatalf("matching %d != brute force %d", got, want)
		}
	}
}

func bruteMatch(adj [][]bool, i int, used int) int {
	if i == len(adj) {
		return 0
	}
	best := bruteMatch(adj, i+1, used) // leave i unmatched
	for j := range adj[i] {
		if adj[i][j] && used&(1<<uint(j)) == 0 {
			if v := 1 + bruteMatch(adj, i+1, used|1<<uint(j)); v > best {
				best = v
			}
		}
	}
	return best
}
