// Package flow implements Dinic's maximum-flow algorithm on integer-
// capacity directed graphs. The concentrator library uses it as an
// omniscient-routing oracle: modelling every chip of a multichip switch
// as a full crossbar and asking for the maximum number of vertex-
// disjoint input→output paths gives the best ANY controller could do in
// the same wiring topology, against which the combinational designs are
// compared (experiment X5).
package flow

import "fmt"

// Graph is a directed graph with integer edge capacities supporting
// maximum flow queries. Nodes are dense integers [0, n).
type Graph struct {
	n     int
	heads [][]int32 // adjacency: indices into edges
	edges []edge
}

type edge struct {
	to   int32
	cap  int32
	flow int32
}

// NewGraph returns an empty graph with n nodes.
func NewGraph(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("flow: negative node count %d", n))
	}
	return &Graph{n: n, heads: make([][]int32, n)}
}

// Nodes returns the node count.
func (g *Graph) Nodes() int { return g.n }

// AddEdge adds a directed edge u→v with the given capacity and returns
// its id. A reverse residual edge of capacity 0 is added internally.
func (g *Graph) AddEdge(u, v, capacity int) int {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic(fmt.Sprintf("flow: edge (%d,%d) out of range [0,%d)", u, v, g.n))
	}
	if capacity < 0 {
		panic("flow: negative capacity")
	}
	id := len(g.edges)
	g.edges = append(g.edges, edge{to: int32(v), cap: int32(capacity)})
	g.edges = append(g.edges, edge{to: int32(u), cap: 0})
	g.heads[u] = append(g.heads[u], int32(id))
	g.heads[v] = append(g.heads[v], int32(id+1))
	return id
}

// Flow returns the flow currently assigned to the edge with the given
// id (after a MaxFlow call).
func (g *Graph) Flow(id int) int { return int(g.edges[id].flow) }

// Reset zeroes all flow, allowing a fresh MaxFlow computation on the
// same graph.
func (g *Graph) Reset() {
	for i := range g.edges {
		g.edges[i].flow = 0
	}
}

// MaxFlow computes the maximum s→t flow using Dinic's algorithm.
func (g *Graph) MaxFlow(s, t int) int {
	if s < 0 || s >= g.n || t < 0 || t >= g.n {
		panic(fmt.Sprintf("flow: terminal out of range"))
	}
	if s == t {
		return 0
	}
	total := 0
	level := make([]int32, g.n)
	iter := make([]int32, g.n)
	queue := make([]int32, 0, g.n)
	for {
		// BFS: build level graph.
		for i := range level {
			level[i] = -1
		}
		queue = queue[:0]
		queue = append(queue, int32(s))
		level[s] = 0
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			for _, id := range g.heads[u] {
				e := &g.edges[id]
				if e.cap-e.flow > 0 && level[e.to] == -1 {
					level[e.to] = level[u] + 1
					queue = append(queue, e.to)
				}
			}
		}
		if level[t] == -1 {
			return total
		}
		// DFS: blocking flow.
		for i := range iter {
			iter[i] = 0
		}
		for {
			pushed := g.dfs(s, t, int32(1<<30), level, iter)
			if pushed == 0 {
				break
			}
			total += int(pushed)
		}
	}
}

func (g *Graph) dfs(u, t int, limit int32, level, iter []int32) int32 {
	if u == t {
		return limit
	}
	for ; iter[u] < int32(len(g.heads[u])); iter[u]++ {
		id := g.heads[u][iter[u]]
		e := &g.edges[id]
		if e.cap-e.flow <= 0 || level[e.to] != level[u]+1 {
			continue
		}
		avail := e.cap - e.flow
		if limit < avail {
			avail = limit
		}
		pushed := g.dfs(int(e.to), t, avail, level, iter)
		if pushed > 0 {
			g.edges[id].flow += pushed
			g.edges[id^1].flow -= pushed
			return pushed
		}
	}
	return 0
}

// MaxBipartiteMatching is a convenience: given left size l, right size
// r, and adjacency pairs, it returns the maximum matching size (via
// unit-capacity max flow).
func MaxBipartiteMatching(l, r int, pairs [][2]int) int {
	g := NewGraph(l + r + 2)
	s, t := l+r, l+r+1
	for i := 0; i < l; i++ {
		g.AddEdge(s, i, 1)
	}
	for j := 0; j < r; j++ {
		g.AddEdge(l+j, t, 1)
	}
	for _, p := range pairs {
		if p[0] < 0 || p[0] >= l || p[1] < 0 || p[1] >= r {
			panic(fmt.Sprintf("flow: pair (%d,%d) out of range", p[0], p[1]))
		}
		g.AddEdge(p[0], l+p[1], 1)
	}
	return g.MaxFlow(s, t)
}
