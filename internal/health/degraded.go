package health

import (
	"fmt"
	"sort"

	"concentrators/internal/bitvec"
	"concentrators/internal/core"
)

// RepairDelay is the constant gate-delay cost of the repair layer's
// hardwired spare-output remapping (its configuration changes only when
// the degradation is reprogrammed, like the §4 barrel shifters).
const RepairDelay = 1

// DegradedSwitch keeps a multichip switch serving traffic after faults
// have been localized, under a recomputed — provably weaker — partial
// concentration contract. Two repair mechanisms are modelled, both
// standard spare-resource techniques for multichip packet-switch cores
// (cf. Tiny Tera's per-chip sparing and MIN reconfiguration around
// faulty elements):
//
//   - Chip bypass: a localized faulty chip is cut out of the signal
//     path and replaced by unsorted spare feed-through lanes (for a
//     shifter chip: an unrotated feed-through). Nothing is destroyed
//     any more, but the chip's sorting work is lost, which costs at
//     most its port count in nearsortedness: ε′ = ε + Σ ports. When
//     the bypassed chip is on the final stage, the repair board also
//     taps the chip's full line so messages stranded beyond the
//     m-boundary can be re-driven onto spare outputs.
//
//   - Output quarantine: a stuck-at final-stage output wire is a bad
//     switch output pin; its chip keeps sorting (the repair board
//     re-drives the chip's logic), but the wire is excluded from the
//     output set and any message concentrated onto it is re-driven
//     onto a free spare output. Masking f such wires yields an
//     (n, m−f, 1−ε′/(m−f)) partial concentrator by Lemma 2.
//
// Route therefore always satisfies CheckPartialConcentration against
// the degraded contract (Outputs() = m−f, EpsilonBound() = ε′), and —
// because bypass and quarantine destroy nothing — faults covered by
// the degradation cause zero further message loss.
type DegradedSwitch struct {
	inner  core.FaultInjectable
	m, n   int
	faults []LocalizedFault

	cleared     map[[2]int]bool // final-stage stuck chips: fault re-driven away, wire quarantined
	bypassed    map[[2]int]int  // bypassed chips -> port count (ε penalty)
	repairChips map[[2]int]bool // bypassed final-stage chips with full-line repair taps

	quarantined []int // masked inner output wires, ascending
	qset        map[int]bool
	remap       []int // inner output -> degraded output (-1 when quarantined)
	epsPenalty  int
}

// NewDegradedSwitch derives the degraded configuration for the
// localized faults (typically ScanReport.Faults).
func NewDegradedSwitch(sw core.FaultInjectable, faults []LocalizedFault) (*DegradedSwitch, error) {
	stages := sw.StageChips()
	final := len(stages) - 1
	d := &DegradedSwitch{
		inner:       sw,
		m:           sw.Outputs(),
		n:           sw.Inputs(),
		faults:      append([]LocalizedFault(nil), faults...),
		cleared:     make(map[[2]int]bool),
		bypassed:    make(map[[2]int]int),
		repairChips: make(map[[2]int]bool),
		qset:        make(map[int]bool),
	}
	for _, f := range faults {
		if f.Stage < 0 || f.Stage >= len(stages) || f.Chip < 0 || f.Chip >= stages[f.Stage].Chips {
			return nil, fmt.Errorf("health: localized fault %v out of range for %s", f, sw.Name())
		}
		st := stages[f.Stage]
		if f.Stage == final && f.ModeKnown && f.Mode == core.ChipStuckOutput && len(f.Ports) == 1 {
			d.cleared[f.key()] = true
			if pos := wirePosition(st, f.Chip, f.Ports[0]); pos < d.m && !d.qset[pos] {
				d.qset[pos] = true
				d.quarantined = append(d.quarantined, pos)
			}
			continue
		}
		if _, dup := d.bypassed[f.key()]; !dup {
			d.bypassed[f.key()] = st.Ports
			d.epsPenalty += st.Ports
		}
		if f.Stage == final {
			d.repairChips[f.key()] = true
		}
	}
	sort.Ints(d.quarantined)
	d.remap = make([]int, d.m)
	next := 0
	for o := 0; o < d.m; o++ {
		if d.qset[o] {
			d.remap[o] = -1
		} else {
			d.remap[o] = next
			next++
		}
	}
	return d, nil
}

// effectivePlane is the inner switch's live plane with the degraded
// repairs applied: cleared faults removed, bypassed chips forced to
// pass-through spare lanes. Faults injected after this degradation was
// derived stay active — they keep hurting until the next scan.
func (d *DegradedSwitch) effectivePlane() *core.FaultPlane {
	p := d.inner.ActiveFaultPlane().Clone()
	for key := range d.cleared {
		p.Remove(key[0], key[1])
	}
	for key := range d.bypassed {
		p.Add(core.ChipFault{Stage: key[0], Chip: key[1], Mode: core.ChipPassThrough})
	}
	return p
}

// Route implements core.Concentrator under the degraded contract.
func (d *DegradedSwitch) Route(valid *bitvec.Vector) ([]int, error) {
	plane := d.effectivePlane()
	var out []int
	var finalSnap core.Snapshot
	if len(d.repairChips) > 0 {
		snaps, o, err := d.inner.TraceWithPlane(valid, plane)
		if err != nil {
			return nil, err
		}
		out, finalSnap = o, snaps[len(snaps)-1]
	} else {
		o, err := d.inner.RouteWithPlane(valid, plane)
		if err != nil {
			return nil, err
		}
		out = o
	}

	// Occupancy of the inner output wires.
	owner := make([]int, d.m)
	for o := range owner {
		owner[o] = -1
	}
	for i, o := range out {
		if o >= 0 {
			owner[o] = i
		}
	}

	// Messages needing a spare output: those the inner route placed on
	// quarantined wires, plus — via the repair taps — live messages
	// stranded beyond the m-boundary on a bypassed final-stage chip.
	var stranded []int
	for i, o := range out {
		if o >= 0 && d.qset[o] {
			out[i] = -1
			owner[o] = -1
			stranded = append(stranded, i)
		}
	}
	if len(d.repairChips) > 0 {
		stages := d.inner.StageChips()
		st := stages[len(stages)-1]
		for key := range d.repairChips {
			for _, id := range line(finalSnap, st, key[1]) {
				if id >= 0 && out[id] == -1 {
					stranded = append(stranded, id)
				}
			}
		}
	}
	sort.Ints(stranded)

	// Re-drive stranded messages onto free, non-quarantined outputs.
	next := 0
	for _, i := range stranded {
		for next < d.m && (d.qset[next] || owner[next] != -1) {
			next++
		}
		if next == d.m {
			break // no spare left: only possible beyond the degraded threshold
		}
		out[i] = next
		owner[next] = i
	}

	// Renumber onto the compacted degraded output set.
	for i, o := range out {
		if o >= 0 {
			out[i] = d.remap[o]
		}
	}
	return out, nil
}

// Name implements core.Concentrator.
func (d *DegradedSwitch) Name() string {
	return fmt.Sprintf("degraded %s (quarantined %d, bypassed %d)",
		d.inner.Name(), len(d.quarantined), len(d.bypassed))
}

// Inputs implements core.Concentrator.
func (d *DegradedSwitch) Inputs() int { return d.n }

// Outputs implements core.Concentrator: m′ = m − f.
func (d *DegradedSwitch) Outputs() int { return d.m - len(d.quarantined) }

// EpsilonBound implements core.Concentrator: ε′ = ε plus the port count
// of every bypassed chip. By Lemma 2 the degraded switch is an
// (n, m−f, 1−ε′/(m−f)) partial concentrator.
func (d *DegradedSwitch) EpsilonBound() int { return d.inner.EpsilonBound() + d.epsPenalty }

// GateDelays implements core.Concentrator: the repair layer adds a
// constant (its remapping is hardwired once configured).
func (d *DegradedSwitch) GateDelays() int { return d.inner.GateDelays() + RepairDelay }

// ChipsTraversed implements core.Concentrator: messages cross the
// repair board.
func (d *DegradedSwitch) ChipsTraversed() int { return d.inner.ChipsTraversed() + 1 }

// ChipCount implements core.Concentrator: one repair board.
func (d *DegradedSwitch) ChipCount() int { return d.inner.ChipCount() + 1 }

// DataPinsPerChip implements core.Concentrator.
func (d *DegradedSwitch) DataPinsPerChip() int { return d.inner.DataPinsPerChip() }

// Quarantined returns the masked inner output wires.
func (d *DegradedSwitch) Quarantined() []int {
	return append([]int(nil), d.quarantined...)
}

// BypassedChips returns the number of chips cut out of the signal path.
func (d *DegradedSwitch) BypassedChips() int { return len(d.bypassed) }

// EpsilonPenalty returns the nearsortedness cost of the bypasses.
func (d *DegradedSwitch) EpsilonPenalty() int { return d.epsPenalty }

// Faults returns the localized faults this degradation covers.
func (d *DegradedSwitch) Faults() []LocalizedFault {
	return append([]LocalizedFault(nil), d.faults...)
}

// Inner returns the wrapped switch.
func (d *DegradedSwitch) Inner() core.FaultInjectable { return d.inner }
