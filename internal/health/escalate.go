package health

import (
	"fmt"
	"sort"

	"concentrators/internal/core"
	"concentrators/internal/link"
	"concentrators/internal/switchsim"
)

// LinkEscalator is the health plane's handler for persistently-
// corrupting output links reported by the ARQ layer's EWMA monitor.
// Escalation mirrors the chip-fault path: a confirming BIST scan runs
// first (corruption on a board wire is invisible to the scan — the
// chips behind it sort perfectly — but a real corruption symptom can
// also be a failing final-stage chip, and the scan settles which), then
// the wire joins the quarantine set and the serving contract is rebuilt
// under Lemma 2 with the scan's chip faults AND every distrusted wire:
// (n, m−f, 1−ε′/(m−f)).
//
// The escalator is cumulative: each call folds the new wire into the
// set, so a session that distrusts several wires converges to one
// degraded contract covering all of them.
type LinkEscalator struct {
	sw    core.FaultInjectable
	wires map[int]bool // physical output wires quarantined so far
}

// NewLinkEscalator builds the escalator for sw.
func NewLinkEscalator(sw core.FaultInjectable) *LinkEscalator {
	return &LinkEscalator{sw: sw, wires: make(map[int]bool)}
}

// Wires returns the physical output wires quarantined so far,
// ascending.
func (e *LinkEscalator) Wires() []int {
	ws := make([]int, 0, len(e.wires))
	for w := range e.wires {
		ws = append(ws, w)
	}
	sort.Ints(ws)
	return ws
}

// Escalate quarantines the output wire behind the suspect link and
// returns the recomputed serving contract. It satisfies
// switchsim.LinkEscalator (via method value e.Escalate).
func (e *LinkEscalator) Escalate(at link.LinkAddr) (*switchsim.LinkEscalation, error) {
	if at.Wire < 0 || at.Wire >= e.sw.Outputs() {
		return nil, fmt.Errorf("health: suspect link %v is not an output wire of %s", at, e.sw.Name())
	}
	rep, err := Scan(e.sw)
	if err != nil {
		return nil, err
	}
	e.wires[at.Wire] = true

	faults := append([]LocalizedFault(nil), rep.Faults...)
	for _, w := range e.Wires() {
		wf, err := OutputWireFault(e.sw, w)
		if err != nil {
			return nil, err
		}
		faults = append(faults, wf)
	}
	deg, err := NewDegradedSwitch(e.sw, faults)
	if err != nil {
		return nil, err
	}
	if core.Threshold(deg) <= 0 {
		// The degraded contract guarantees nothing — quarantining this
		// wire would be worse than living with its corruption. Leave
		// the contract alone (the monitor still stops charging the
		// link, so the session keeps running on its current switch).
		delete(e.wires, at.Wire)
		return &switchsim.LinkEscalation{ScanRoutes: rep.Routes, ChipFaults: len(rep.Faults)}, nil
	}
	return &switchsim.LinkEscalation{
		Serving:    deg,
		OutputWire: deg.OutputWire,
		ScanRoutes: rep.Routes,
		ChipFaults: len(rep.Faults),
	}, nil
}

// RunIntegritySession runs a wire-integrity session with the health
// plane wired in: suspect output links escalate through a BIST scan
// into wire quarantine and a recomputed (n, m−f, α′) degraded
// contract. cfg.Integrity must be non-nil; its Escalate hook is
// installed here (any caller-provided hook is an error — use
// switchsim.RunSession directly to supply your own).
func RunIntegritySession(sw core.FaultInjectable, cfg switchsim.SessionConfig) (*switchsim.SessionStats, error) {
	if cfg.Integrity == nil {
		return nil, fmt.Errorf("health: RunIntegritySession needs cfg.Integrity")
	}
	if cfg.Integrity.Escalate != nil {
		return nil, fmt.Errorf("health: cfg.Integrity.Escalate is installed by RunIntegritySession")
	}
	ic := *cfg.Integrity
	ic.Escalate = NewLinkEscalator(sw).Escalate
	cfg.Integrity = &ic
	return switchsim.RunSession(sw, cfg)
}
