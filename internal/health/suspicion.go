package health

// SuspicionClock tracks, per replica, how many consecutive rounds the
// arbiter has gone without hearing from the board's control plane, and
// remembers the last contract threshold heard before the silence began.
// A partition-aware arbiter uses the clock two ways: the unheard count
// drives suspicion (and, in the unfenced control, eager failover —
// precisely the split-brain mistake fencing exists to contain), and the
// last-known-good threshold lets admission degrade gracefully to the
// most recent real contract instead of guessing while a replica is dark.
//
// Failure detection by silence is inherently unreliable under
// partitions — the clock deliberately reports *suspicion*, never a
// verdict; only quorum-checked, directly observed evidence (a heard
// refusal, a heard probe failure) justifies membership changes.
type SuspicionClock struct {
	unheard  []int
	lkg      []int
	lkgKnown []bool
}

// NewSuspicionClock tracks n replicas, all initially heard and with no
// last-known-good contract recorded.
func NewSuspicionClock(n int) *SuspicionClock {
	return &SuspicionClock{
		unheard:  make([]int, n),
		lkg:      make([]int, n),
		lkgKnown: make([]bool, n),
	}
}

// Hear resets replica i's suspicion and records threshold as its
// last-known-good contract.
func (c *SuspicionClock) Hear(i, threshold int) {
	c.unheard[i] = 0
	c.lkg[i] = threshold
	c.lkgKnown[i] = true
}

// Miss advances replica i's suspicion by one silent round and returns
// the new consecutive-unheard count.
func (c *SuspicionClock) Miss(i int) int {
	c.unheard[i]++
	return c.unheard[i]
}

// Unheard returns replica i's consecutive silent-round count.
func (c *SuspicionClock) Unheard(i int) int { return c.unheard[i] }

// LastKnownGood returns the threshold last heard from replica i and
// whether one was ever heard.
func (c *SuspicionClock) LastKnownGood(i int) (int, bool) {
	return c.lkg[i], c.lkgKnown[i]
}

// Forget clears replica i entirely — a drained or restarted board's old
// contract must not outlive its membership.
func (c *SuspicionClock) Forget(i int) {
	c.unheard[i] = 0
	c.lkg[i] = 0
	c.lkgKnown[i] = false
}

// SuspicionSnapshot is the checkpointable state of a SuspicionClock.
type SuspicionSnapshot struct {
	Unheard  []int
	LKG      []int
	LKGKnown []bool
}

// Snapshot captures the clock for a pool checkpoint.
func (c *SuspicionClock) Snapshot() SuspicionSnapshot {
	return SuspicionSnapshot{
		Unheard:  append([]int(nil), c.unheard...),
		LKG:      append([]int(nil), c.lkg...),
		LKGKnown: append([]bool(nil), c.lkgKnown...),
	}
}

// RestoreSuspicionClock rebuilds a clock from a checkpoint, padding or
// truncating to n replicas.
func RestoreSuspicionClock(n int, s SuspicionSnapshot) *SuspicionClock {
	c := NewSuspicionClock(n)
	for i := 0; i < n && i < len(s.Unheard); i++ {
		c.unheard[i] = s.Unheard[i]
	}
	for i := 0; i < n && i < len(s.LKG); i++ {
		c.lkg[i] = s.LKG[i]
	}
	for i := 0; i < n && i < len(s.LKGKnown); i++ {
		c.lkgKnown[i] = s.LKGKnown[i]
	}
	return c
}
