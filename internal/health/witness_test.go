package health

import (
	"reflect"
	"testing"
)

func TestCrossExamine(t *testing.T) {
	cases := []struct {
		name      string
		claimed   int
		witnesses []int
		want      WitnessVerdict
	}{
		{"no witnesses", 3, nil, WitnessInconclusive},
		{"all unroutable", 3, []int{-1, -1}, WitnessInconclusive},
		{"lone agree", 3, []int{3}, WitnessAgree},
		{"lone contradict", 3, []int{5}, WitnessContradicted},
		{"majority agree", 3, []int{3, 3}, WitnessAgree},
		{"majority contradict", 3, []int{5, 5}, WitnessContradicted},
		{"witnesses split", 3, []int{5, 6}, WitnessInconclusive},
		{"one unroutable one agree", 3, []int{-1, 3}, WitnessAgree},
		{"one unroutable one contradict", 3, []int{-1, 7}, WitnessContradicted},
	}
	for _, tc := range cases {
		if got := CrossExamine(tc.claimed, tc.witnesses); got != tc.want {
			t.Errorf("%s: CrossExamine(%d, %v) = %v, want %v", tc.name, tc.claimed, tc.witnesses, got, tc.want)
		}
	}
}

func TestWitnessTallyMajorityConvictsImmediately(t *testing.T) {
	tally := NewWitnessTally(3)
	if !tally.Observe(1, WitnessContradicted, 2) {
		t.Fatal("two-witness contradiction must convict on the spot")
	}
	if tally.Convictions() != 1 {
		t.Fatalf("Convictions = %d, want 1", tally.Convictions())
	}
}

func TestWitnessTallyLoneWitnessStreak(t *testing.T) {
	tally := NewWitnessTally(2)
	if tally.Observe(0, WitnessContradicted, 1) {
		t.Fatal("first lone contradiction must not convict")
	}
	if !tally.Observe(0, WitnessContradicted, 1) {
		t.Fatal("second consecutive lone contradiction must convict")
	}
	// An agreement in between resets the streak.
	if tally.Observe(1, WitnessContradicted, 1) {
		t.Fatal("streaks must be per-replica")
	}
	tally.Observe(1, WitnessAgree, 1)
	if tally.Observe(1, WitnessContradicted, 1) {
		t.Fatal("agreement must reset the streak")
	}
	// Inconclusive audits neither advance nor reset.
	tally.Observe(1, WitnessInconclusive, 0)
	if !tally.Observe(1, WitnessContradicted, 1) {
		t.Fatal("inconclusive must preserve the pending streak")
	}
}

func TestWitnessTallySnapshotRestore(t *testing.T) {
	tally := NewWitnessTally(3)
	tally.Observe(2, WitnessContradicted, 1)
	tally.Observe(0, WitnessContradicted, 2)
	streaks := tally.Streaks()
	if !reflect.DeepEqual(streaks, []int{0, 0, 1}) {
		t.Fatalf("Streaks = %v, want [0 0 1]", streaks)
	}
	restored := RestoreWitnessTally(3, streaks, tally.Convictions())
	if restored.Convictions() != 1 {
		t.Fatalf("restored Convictions = %d, want 1", restored.Convictions())
	}
	// The pending streak survives: one more lone contradiction convicts.
	if !restored.Observe(2, WitnessContradicted, 1) {
		t.Fatal("restored tally lost the pending streak")
	}
	// Padding and truncation are tolerated.
	if RestoreWitnessTally(5, streaks, 0) == nil || RestoreWitnessTally(1, streaks, 0) == nil {
		t.Fatal("restore must pad/truncate")
	}
}

func TestHealthClaimEquivocates(t *testing.T) {
	cases := []struct {
		name     string
		claim    HealthClaim
		evidence int
		want     bool
	}{
		{"honest", HealthClaim{ToArbiter: 5, ToPeers: 5}, 5, false},
		{"modest", HealthClaim{ToArbiter: 4, ToPeers: 4}, 5, false},
		{"forked", HealthClaim{ToArbiter: 5, ToPeers: 3}, 5, true},
		{"inflated to arbiter", HealthClaim{ToArbiter: 7, ToPeers: 7}, 5, true},
		{"forked and inflated", HealthClaim{ToArbiter: 8, ToPeers: 2}, 5, true},
	}
	for _, tc := range cases {
		if got := tc.claim.Equivocates(tc.evidence); got != tc.want {
			t.Errorf("%s: %+v.Equivocates(%d) = %v, want %v", tc.name, tc.claim, tc.evidence, got, tc.want)
		}
	}
}
