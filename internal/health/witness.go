package health

// Witness cross-examination and equivocation evidence — the health
// plane's answer to replicas that lie rather than fail.
//
// Frame provenance (internal/byzantine) catches forged and replayed
// acks at the receiving edge, but a misrouting replica forges
// nothing: the frame physically arrives, payload and tag genuine,
// only the acked input→output association is a lie. No edge check can
// see that; only comparison against independent evidence can. The
// pool therefore runs seeded spot-check audits: a sampled claim is
// re-routed through up to two witness replicas and the three
// assertions are cross-examined majority-of-3. Likewise an
// equivocating replica's health reports are lies about *state*; the
// arbiter cross-checks them against ledger evidence it has verified
// itself — trust the ledger, not the board.
//
// Both mechanisms produce *evidence-backed convictions* that feed the
// existing breaker→quarantine→canary machinery (and, through it, the
// lease/fencing machinery): misbehavior is contained by the same
// paths that contain honest failure.

// WitnessVerdict is the outcome of cross-examining one audited claim.
type WitnessVerdict int

// The cross-examination outcomes.
const (
	// WitnessAgree: every consulted witness routes the sampled input
	// where the primary's ack claims it landed.
	WitnessAgree WitnessVerdict = iota
	// WitnessContradicted: the witnesses agree with each other and
	// against the claim — the majority convicts the claim.
	WitnessContradicted
	// WitnessInconclusive: no witness was available, or the witnesses
	// disagree among themselves (a degraded witness routes
	// legitimately differently); no evidence either way.
	WitnessInconclusive
)

// String names the verdict.
func (v WitnessVerdict) String() string {
	switch v {
	case WitnessAgree:
		return "agree"
	case WitnessContradicted:
		return "contradicted"
	case WitnessInconclusive:
		return "inconclusive"
	default:
		return "WitnessVerdict(?)"
	}
}

// CrossExamine applies majority-of-3 to one audited claim: the
// primary asserts the sampled input landed on claimed; each witness
// reports where its own routing of the same admitted set puts that
// input (−1: the witness could not route it). Two witnesses that
// agree with each other outvote the claim; a single witness can only
// contradict, never convict alone — callers escalate via Tally.
func CrossExamine(claimed int, witnesses []int) WitnessVerdict {
	usable := witnesses[:0:0]
	for _, w := range witnesses {
		if w >= 0 {
			usable = append(usable, w)
		}
	}
	switch len(usable) {
	case 0:
		return WitnessInconclusive
	case 1:
		if usable[0] == claimed {
			return WitnessAgree
		}
		return WitnessContradicted
	default:
		if usable[0] != usable[1] {
			return WitnessInconclusive
		}
		if usable[0] == claimed {
			return WitnessAgree
		}
		return WitnessContradicted
	}
}

// WitnessTally turns per-audit verdicts into convictions: a
// contradiction backed by a two-witness majority convicts on the
// spot; a lone witness's contradiction only advances a per-replica
// streak, convicting when ConvictStreak consecutive audits disagree —
// one disagreement could be the witness's own degradation.
type WitnessTally struct {
	streak      []int
	convictions int
}

// ConvictStreak is the consecutive lone-witness contradictions that
// convict.
const ConvictStreak = 2

// NewWitnessTally tracks n replicas with clean records.
func NewWitnessTally(n int) *WitnessTally {
	return &WitnessTally{streak: make([]int, n)}
}

// Observe folds one audit of the given primary into the tally and
// reports whether the evidence now convicts it. witnesses is how many
// usable witness routings backed the verdict.
func (t *WitnessTally) Observe(primary int, v WitnessVerdict, witnesses int) bool {
	switch v {
	case WitnessAgree:
		t.streak[primary] = 0
		return false
	case WitnessContradicted:
		if witnesses >= 2 {
			t.streak[primary] = 0
			t.convictions++
			return true
		}
		t.streak[primary]++
		if t.streak[primary] >= ConvictStreak {
			t.streak[primary] = 0
			t.convictions++
			return true
		}
	}
	return false
}

// Convictions returns the number of convictions the tally has issued.
func (t *WitnessTally) Convictions() int { return t.convictions }

// Streaks exposes the per-replica lone-witness disagreement streaks
// for checkpointing (a mid-audit restart must not forget a pending
// streak, or a liar could reset its record by crashing the arbiter).
func (t *WitnessTally) Streaks() []int {
	return append([]int(nil), t.streak...)
}

// RestoreWitnessTally rebuilds a tally from checkpointed streaks and
// conviction count, padding or truncating to n replicas.
func RestoreWitnessTally(n int, streaks []int, convictions int) *WitnessTally {
	t := NewWitnessTally(n)
	copy(t.streak, streaks)
	t.convictions = convictions
	return t
}

// HealthClaim is one replica's self-reported delivery claim for a
// round, as told to the two audiences a byzantine replica can play
// against each other: the arbiter (who grants leases) and the peer
// replicas (who decide failover targets).
type HealthClaim struct {
	// ToArbiter is the frames the replica tells the arbiter it
	// delivered this round.
	ToArbiter int
	// ToPeers is the frames it reports to its peers.
	ToPeers int
}

// Equivocates cross-checks the claim against ledger evidence — the
// frames the arbiter's own verified ledger booked for the replica
// this round. A fork between the audiences, or an arbiter-side claim
// the ledger cannot back, is equivocation: the report is a lie
// regardless of which audience got the true copy. Under-reporting to
// the arbiter is NOT flagged — modesty loses elections, not safety.
func (c HealthClaim) Equivocates(ledgerEvidence int) bool {
	return c.ToArbiter != c.ToPeers || c.ToArbiter > ledgerEvidence
}
