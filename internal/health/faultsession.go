package health

import (
	"fmt"
	"math/rand"
	"sort"

	"concentrators/internal/core"
	"concentrators/internal/switchsim"
)

// ScheduledFault is one arrival of the fault process: at the start of
// Round, Fault strikes the switch.
type ScheduledFault struct {
	Round int
	Fault core.ChipFault
}

// GenerateFaultSchedule draws a deterministic, seeded fault arrival
// process for sw: inter-arrival times are exponential with mean mtbf
// rounds, each striking a uniformly random chip that has not failed yet
// with a uniformly random failure mode. At most maxFaults faults are
// scheduled, all before round `rounds`.
func GenerateFaultSchedule(seed int64, sw core.FaultInjectable, mtbf float64, rounds, maxFaults int) []ScheduledFault {
	rng := rand.New(rand.NewSource(seed))
	stages := sw.StageChips()
	if len(stages) == 0 || mtbf <= 0 {
		return nil
	}
	used := make(map[[2]int]bool)
	var out []ScheduledFault
	t := 0.0
	for len(out) < maxFaults {
		t += rng.ExpFloat64() * mtbf
		round := int(t)
		if round >= rounds {
			break
		}
		var f core.ChipFault
		ok := false
		for tries := 0; tries < 64; tries++ {
			si := rng.Intn(len(stages))
			st := stages[si]
			chip := rng.Intn(st.Chips)
			if used[[2]int{si, chip}] {
				continue
			}
			mode := core.ChipFaultMode(rng.Intn(4))
			if mode == core.ChipSwappedPair && st.Ports < 2 {
				mode = core.ChipDead
			}
			a := rng.Intn(st.Ports)
			b := a
			if st.Ports > 1 {
				for b == a {
					b = rng.Intn(st.Ports)
				}
			}
			f = core.ChipFault{Stage: si, Chip: chip, Mode: mode, A: a, B: b}
			used[[2]int{si, chip}] = true
			ok = true
			break
		}
		if !ok {
			break // the switch has run out of healthy chips
		}
		out = append(out, ScheduledFault{Round: round, Fault: f})
	}
	return out
}

// FaultSessionConfig drives a fault-aware multi-round session.
type FaultSessionConfig struct {
	switchsim.SessionConfig
	// Schedule is the fault arrival process (see GenerateFaultSchedule).
	Schedule []ScheduledFault
	// ScanEvery runs a BIST scan every that many rounds (0 disables
	// periodic scanning).
	ScanEvery int
	// ScanOnViolation triggers an immediate scan when a traffic round
	// violates the active delivery contract — the cheap online detector
	// that catches most destructive faults within one round.
	ScanOnViolation bool
	// BackoffMax bounds the Resend policy's exponential retry backoff:
	// the i-th retry of a message waits min(AckDelay·2^(i−1), BackoffMax)
	// extra rounds for its acknowledgment timeout. 0 means
	// 8·max(1, AckDelay).
	BackoffMax int
}

// Validate rejects malformed configurations with an error instead of
// silently clamping: the embedded SessionConfig checks (rounds, load,
// payload bits, ack delay), negative scan periods or backoff caps, and
// scheduled faults that fall outside the session or name a chip the
// switch does not have.
func (cfg FaultSessionConfig) Validate(sw core.FaultInjectable) error {
	if err := cfg.SessionConfig.Validate(); err != nil {
		return err
	}
	if cfg.ScanEvery < 0 {
		return fmt.Errorf("health: negative scan period %d", cfg.ScanEvery)
	}
	if cfg.BackoffMax < 0 {
		return fmt.Errorf("health: negative backoff cap %d", cfg.BackoffMax)
	}
	stages := sw.StageChips()
	for i, sf := range cfg.Schedule {
		if sf.Round < 0 || sf.Round >= cfg.Rounds {
			return fmt.Errorf("health: schedule[%d] round %d outside session [0,%d)", i, sf.Round, cfg.Rounds)
		}
		f := sf.Fault
		if f.Stage < 0 || f.Stage >= len(stages) {
			return fmt.Errorf("health: schedule[%d] stage %d outside [0,%d)", i, f.Stage, len(stages))
		}
		if st := stages[f.Stage]; f.Chip < 0 || f.Chip >= st.Chips {
			return fmt.Errorf("health: schedule[%d] chip %d outside stage %q's %d chips", i, f.Chip, st.Name, st.Chips)
		}
	}
	return nil
}

// DetectionEvent records one fault localization.
type DetectionEvent struct {
	// Round is when the scan localized the fault.
	Round int
	// Fault is the diagnosis.
	Fault LocalizedFault
	// LatencyRounds is rounds elapsed since the fault's scheduled
	// arrival, or −1 if the fault was not matched to the schedule.
	LatencyRounds int
}

// FaultSessionStats extends SessionStats with the fault plane's
// observability: detection latency, losses before/after detection,
// scan overhead, and the post-degradation contract.
type FaultSessionStats struct {
	switchsim.SessionStats
	// FaultsInjected and FaultsDetected count schedule arrivals and
	// scan localizations.
	FaultsInjected, FaultsDetected int
	// Detections lists every localization with its latency.
	Detections []DetectionEvent
	// LostBeforeDetection is the delivery shortfall against the active
	// contract accumulated while an undetected fault was live;
	// LostAfterDetection is the same once every live fault was covered
	// by the degradation (zero when the degradation is sound).
	LostBeforeDetection, LostAfterDetection int
	// GuaranteeViolations counts traffic rounds whose routing violated
	// the active contract (the online detector's trigger).
	GuaranteeViolations int
	// Scans and ScanRoutes count BIST scans and the setup cycles they
	// consumed; ScanOverhead is ScanRoutes/(ScanRoutes+traffic rounds).
	Scans, ScanRoutes int
	ScanOverhead      float64
	// PostDegradationAlpha, DegradedThreshold and DegradedOutputs
	// describe the final degraded contract (α′ = 1−ε′/m′, m′−ε′, m′);
	// they equal the healthy contract when nothing was detected.
	PostDegradationAlpha float64
	DegradedThreshold    int
	DegradedOutputs      int
}

type faultPending struct {
	input      int
	firstRound int
	eligible   int
	attempts   int
}

// RunFaultAwareSession simulates a multi-round session during which
// chip faults strike the switch per cfg.Schedule. Every round: due
// faults are injected into the live fault plane, a BIST scan runs if
// due, pending and new messages are offered, the active switch (raw,
// or its DegradedSwitch once faults are localized) routes them, and
// the routing is checked online against the active contract. Messages
// destroyed by an undetected fault surface as losses; under Resend the
// ack path retries them with bounded exponential backoff.
func RunFaultAwareSession(sw core.FaultInjectable, cfg FaultSessionConfig) (*FaultSessionStats, error) {
	if err := cfg.Validate(sw); err != nil {
		return nil, err
	}
	backoffMax := cfg.BackoffMax
	if backoffMax <= 0 {
		backoffMax = 8 * max(1, cfg.AckDelay)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := sw.Inputs()
	stats := &FaultSessionStats{
		SessionStats: switchsim.SessionStats{
			Policy:            cfg.Policy,
			LatencyHistogram:  map[int]int{},
			DeliveredPerRound: make([]int, cfg.Rounds),
		},
	}

	plane := sw.ActiveFaultPlane()
	if plane == nil {
		plane = core.NewFaultPlane()
		if err := sw.SetFaultPlane(plane); err != nil {
			return nil, err
		}
	}
	var active core.Concentrator = sw
	var degraded *DegradedSwitch
	known := make(map[[2]int]LocalizedFault)
	injectedAt := make(map[[2]int]int)

	runScan := func(round int) error {
		rep, err := Scan(sw)
		if err != nil {
			return err
		}
		stats.Scans++
		stats.ScanRoutes += rep.Routes
		fresh := false
		for _, lf := range rep.Faults {
			if _, seen := known[lf.key()]; seen {
				continue
			}
			known[lf.key()] = lf
			fresh = true
			lat := -1
			if at, ok := injectedAt[lf.key()]; ok {
				lat = round - at
			}
			stats.Detections = append(stats.Detections, DetectionEvent{Round: round, Fault: lf, LatencyRounds: lat})
			stats.FaultsDetected++
		}
		if fresh {
			all := make([]LocalizedFault, 0, len(known))
			for _, lf := range known {
				all = append(all, lf)
			}
			sort.Slice(all, func(i, j int) bool {
				if all[i].Stage != all[j].Stage {
					return all[i].Stage < all[j].Stage
				}
				return all[i].Chip < all[j].Chip
			})
			d, err := NewDegradedSwitch(sw, all)
			if err != nil {
				return err
			}
			degraded, active = d, d
		}
		return nil
	}

	buffered := make(map[int]*faultPending)
	var retryPool []*faultPending
	trafficRounds := 0

	for round := 0; round < cfg.Rounds; round++ {
		for _, sf := range cfg.Schedule {
			if sf.Round == round {
				plane.Add(sf.Fault)
				injectedAt[[2]int{sf.Fault.Stage, sf.Fault.Chip}] = round
				stats.FaultsInjected++
			}
		}
		if cfg.ScanEvery > 0 && round%cfg.ScanEvery == 0 {
			if err := runScan(round); err != nil {
				return nil, err
			}
		}

		offered := map[int]*faultPending{}
		busy := map[int]bool{}
		switch cfg.Policy {
		case switchsim.Buffer:
			for in, pm := range buffered {
				offered[in] = pm
				stats.Retries++
			}
		case switchsim.Misroute:
			var wandering []*faultPending
			for _, pm := range retryPool {
				in := -1
				for _, cand := range rng.Perm(n) {
					if offered[cand] == nil {
						in = cand
						break
					}
				}
				if in == -1 {
					wandering = append(wandering, pm)
					continue
				}
				pm.input = in
				offered[in] = pm
				stats.Retries++
			}
			retryPool = wandering
		case switchsim.Resend:
			var stillWaiting []*faultPending
			for _, pm := range retryPool {
				if pm.eligible > round {
					stillWaiting = append(stillWaiting, pm)
					busy[pm.input] = true
					continue
				}
				if offered[pm.input] != nil {
					return nil, fmt.Errorf("health: duplicate retry for input %d", pm.input)
				}
				offered[pm.input] = pm
				stats.Retries++
			}
			retryPool = stillWaiting
		}

		for in := 0; in < n; in++ {
			if rng.Float64() >= cfg.Load {
				continue
			}
			if offered[in] != nil || busy[in] {
				stats.Refused++
				continue
			}
			offered[in] = &faultPending{input: in, firstRound: round}
			stats.Offered++
		}
		if len(offered) > stats.MaxOffered {
			stats.MaxOffered = len(offered)
		}
		if len(offered) == 0 {
			if w := len(retryPool) + len(buffered); w > stats.MaxBacklog {
				stats.MaxBacklog = w
			}
			continue
		}

		inputs := make([]int, 0, len(offered))
		for in := range offered {
			inputs = append(inputs, in)
		}
		sort.Ints(inputs)
		msgs := make([]switchsim.Message, 0, len(inputs))
		for _, in := range inputs {
			payload := make([]byte, cfg.PayloadBits)
			for b := range payload {
				payload[b] = byte(rng.Intn(2))
			}
			msgs = append(msgs, switchsim.Message{Input: in, Payload: payload})
		}
		res, err := switchsim.Run(active, msgs)
		if err != nil {
			return nil, err
		}
		trafficRounds++

		for _, dlv := range res.Delivered {
			pm := offered[dlv.Input]
			stats.Delivered++
			stats.DeliveredPerRound[round]++
			stats.LatencyHistogram[round-pm.firstRound]++
		}

		// Online detection: the round's delivery shortfall against the
		// active contract is fault loss; attribute it to the detection
		// phase the session is in.
		undetected := false
		for _, f := range plane.Faults() {
			if _, seen := known[[2]int{f.Stage, f.Chip}]; !seen {
				undetected = true
				break
			}
		}
		expect := min(len(msgs), core.Threshold(active))
		if shortfall := expect - len(res.Delivered); shortfall > 0 {
			if undetected {
				stats.LostBeforeDetection += shortfall
			} else {
				stats.LostAfterDetection += shortfall
			}
		}
		violated := switchsim.CheckGuarantee(active, msgs, res) != nil
		if violated {
			stats.GuaranteeViolations++
		}

		buffered = map[int]*faultPending{}
		for _, in := range res.DroppedInputs {
			pm := offered[in]
			switch cfg.Policy {
			case switchsim.Drop:
				stats.Dropped++
			case switchsim.Resend:
				pm.attempts++
				delay := cfg.AckDelay
				for a := 1; a < pm.attempts && delay < backoffMax; a++ {
					delay *= 2
				}
				if delay > backoffMax {
					delay = backoffMax
				}
				pm.eligible = round + 1 + delay
				retryPool = append(retryPool, pm)
			case switchsim.Misroute:
				retryPool = append(retryPool, pm)
			case switchsim.Buffer:
				buffered[in] = pm
			}
		}
		if w := len(retryPool) + len(buffered); w > stats.MaxBacklog {
			stats.MaxBacklog = w
		}

		if violated && cfg.ScanOnViolation {
			if err := runScan(round); err != nil {
				return nil, err
			}
		}
	}

	if total := stats.ScanRoutes + trafficRounds; total > 0 {
		stats.ScanOverhead = float64(stats.ScanRoutes) / float64(total)
	}
	final := active
	if degraded != nil {
		final = degraded
	}
	stats.PostDegradationAlpha = core.LoadRatio(final)
	stats.DegradedThreshold = core.Threshold(final)
	stats.DegradedOutputs = final.Outputs()
	return stats, nil
}
