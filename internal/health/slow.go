// Slow-replica conviction: relative-percentile outlier detection over
// per-replica latency windows. A gray-failed replica routes correctly
// — BIST scans and delivery-guarantee checks see nothing — but 10–100×
// slower than its peers. The detector convicts on *relative* evidence
// only (a replica's recent latency quantile persistently above the
// median of its peers by a calibrated factor), never on absolute
// thresholds: the pool has no ground truth for "fast", only for
// "slower than everyone else doing the same work".
package health

import (
	"fmt"
	"math"
	"sort"
)

// SlowConfig calibrates a SlowDetector.
type SlowConfig struct {
	// Window is the per-replica latency window: the number of recent
	// round latencies the quantile is computed over. 0 means 32.
	Window int
	// Quantile is the per-replica latency quantile compared against the
	// peer median (the tail the detector watches). 0 means 0.9.
	Quantile float64
	// Factor is the conviction multiplier: replica quantile > Factor ×
	// peer-median quantile convicts (after Persistence sweeps). 0 means
	// 3.
	Factor float64
	// Persistence is the number of consecutive over-the-line sweeps
	// required to convict, so a single GC-like pause window never trips
	// the breaker. 0 means 3.
	Persistence int
	// MinSamples is the minimum window occupancy before a replica's
	// quantile is trusted — for the suspect and for the peers it is
	// judged against. 0 means 8.
	MinSamples int
}

func (c SlowConfig) withDefaults() SlowConfig {
	if c.Window == 0 {
		c.Window = 32
	}
	if c.Quantile == 0 {
		c.Quantile = 0.9
	}
	if c.Factor == 0 {
		c.Factor = 3
	}
	if c.Persistence == 0 {
		c.Persistence = 3
	}
	if c.MinSamples == 0 {
		c.MinSamples = 8
	}
	return c
}

// Validate rejects malformed detector configurations.
func (c SlowConfig) Validate() error {
	eff := c.withDefaults()
	switch {
	case c.Window < 0:
		return fmt.Errorf("health: negative slow-detector window %d", c.Window)
	case math.IsNaN(c.Quantile) || c.Quantile < 0 || c.Quantile > 1:
		return fmt.Errorf("health: slow-detector quantile %v outside [0,1]", c.Quantile)
	case math.IsNaN(c.Factor) || c.Factor < 0:
		return fmt.Errorf("health: slow-detector factor %v must be positive", c.Factor)
	case c.Factor != 0 && eff.Factor <= 1:
		return fmt.Errorf("health: slow-detector factor %v must exceed 1 (anything slower would convict healthy jitter)", c.Factor)
	case c.Persistence < 0:
		return fmt.Errorf("health: negative slow-detector persistence %d", c.Persistence)
	case c.MinSamples < 0:
		return fmt.Errorf("health: negative slow-detector min samples %d", c.MinSamples)
	case eff.MinSamples > eff.Window:
		return fmt.Errorf("health: slow-detector MinSamples %d exceeds window %d", eff.MinSamples, eff.Window)
	}
	return nil
}

// slowWindow is one replica's ring of recent latencies.
type slowWindow struct {
	ring   []int
	filled int
	next   int
	streak int // consecutive over-the-line sweeps
}

// SlowDetector watches per-replica round latencies and convicts gray
// (functionally correct but persistently slow) replicas by relative
// percentile. Not safe for concurrent use; the pool serializes access
// under its own lock.
type SlowDetector struct {
	cfg     SlowConfig
	windows []slowWindow
}

// NewSlowDetector builds a detector over the given replica count.
func NewSlowDetector(cfg SlowConfig, replicas int) (*SlowDetector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if replicas < 1 {
		return nil, fmt.Errorf("health: slow detector needs ≥ 1 replica, got %d", replicas)
	}
	d := &SlowDetector{cfg: cfg.withDefaults(), windows: make([]slowWindow, replicas)}
	for i := range d.windows {
		d.windows[i].ring = make([]int, d.cfg.Window)
	}
	return d, nil
}

// Observe records one round latency for a replica (negative latencies
// clamp to 0; out-of-range replicas are ignored).
func (d *SlowDetector) Observe(replica, latency int) {
	if replica < 0 || replica >= len(d.windows) {
		return
	}
	if latency < 0 {
		latency = 0
	}
	w := &d.windows[replica]
	w.ring[w.next] = latency
	w.next = (w.next + 1) % len(w.ring)
	if w.filled < len(w.ring) {
		w.filled++
	}
}

// Quantile returns replica's windowed latency quantile; ok is false
// until the window holds MinSamples.
func (d *SlowDetector) Quantile(replica int) (lat int, ok bool) {
	if replica < 0 || replica >= len(d.windows) {
		return 0, false
	}
	w := &d.windows[replica]
	if w.filled < d.cfg.MinSamples {
		return 0, false
	}
	lats := append([]int(nil), w.ring[:w.filled]...)
	sort.Ints(lats)
	rank := int(math.Ceil(d.cfg.Quantile * float64(len(lats))))
	if rank < 1 {
		rank = 1
	}
	return lats[rank-1], true
}

// PeerMedian returns the median windowed quantile across every replica
// except the given one; ok is false unless at least one peer has
// MinSamples.
func (d *SlowDetector) PeerMedian(replica int) (lat float64, ok bool) {
	var peers []int
	for i := range d.windows {
		if i == replica {
			continue
		}
		if q, qok := d.Quantile(i); qok {
			peers = append(peers, q)
		}
	}
	if len(peers) == 0 {
		return 0, false
	}
	sort.Ints(peers)
	mid := len(peers) / 2
	if len(peers)%2 == 1 {
		return float64(peers[mid]), true
	}
	return float64(peers[mid-1]+peers[mid]) / 2, true
}

// overLine reports whether replica's quantile is currently above the
// conviction line (Factor × peer median, floored at the peer median
// plus one round so a pool of equally fast replicas never convicts on
// quantization noise).
func (d *SlowDetector) overLine(replica int) bool {
	q, ok := d.Quantile(replica)
	if !ok {
		return false
	}
	med, ok := d.PeerMedian(replica)
	if !ok {
		return false
	}
	line := math.Max(d.cfg.Factor*med, med+1)
	return float64(q) > line
}

// Sweep advances every replica's persistence streak and returns the
// replicas newly crossing Persistence consecutive over-the-line sweeps
// — the convictions. A convicted replica's window is left intact so
// the pool's canary probe can compare against it; call Reset once the
// replica is re-admitted.
func (d *SlowDetector) Sweep() (convicted []int) {
	for i := range d.windows {
		w := &d.windows[i]
		if !d.overLine(i) {
			w.streak = 0
			continue
		}
		w.streak++
		if w.streak == d.cfg.Persistence {
			convicted = append(convicted, i)
		}
	}
	return convicted
}

// Factor returns the calibrated conviction multiplier.
func (d *SlowDetector) Factor() float64 { return d.cfg.Factor }

// Reset clears a replica's window and streak (fresh trial after repair
// or re-admission: its old tail died with the fault).
func (d *SlowDetector) Reset(replica int) {
	if replica < 0 || replica >= len(d.windows) {
		return
	}
	w := &d.windows[replica]
	w.filled, w.next, w.streak = 0, 0, 0
}
