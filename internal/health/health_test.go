package health

import (
	"math/rand"
	"testing"

	"concentrators/internal/core"
	"concentrators/internal/switchsim"
)

func newRevsort1024(t *testing.T) core.FaultInjectable {
	t.Helper()
	sw, err := core.NewRevsortSwitch(1024, 512)
	if err != nil {
		t.Fatal(err)
	}
	return sw
}

func newColumnsort1024(t *testing.T) core.FaultInjectable {
	t.Helper()
	sw, err := core.NewColumnsortSwitchBeta(1024, 512, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	return sw
}

var acceptanceSwitches = []struct {
	name  string
	build func(t *testing.T) core.FaultInjectable
}{
	{"revsort", newRevsort1024},
	{"columnsort", newColumnsort1024},
}

func TestScanHealthySwitch(t *testing.T) {
	for _, tc := range acceptanceSwitches {
		sw := tc.build(t)
		rep, err := Scan(sw)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Healthy {
			t.Fatalf("%s: healthy switch scanned unhealthy: faults %v violations %v",
				tc.name, rep.Faults, rep.Violations)
		}
		if rep.Patterns == 0 || rep.Routes != rep.Patterns {
			t.Fatalf("%s: scan accounting off: %d patterns, %d routes", tc.name, rep.Patterns, rep.Routes)
		}
	}
}

// TestFaultLocalizationAndDegradedOperation is the PR's acceptance
// criterion: for every single-chip fault kind injected into every stage
// of a revsort (n=1024) and a columnsort (n=1024, β=3/4) switch, the
// health scan must localize the faulty stage and chip, and a seeded
// 200-round session through the resulting DegradedSwitch must pass
// CheckGuarantee against the recomputed degraded threshold with zero
// post-detection losses.
func TestFaultLocalizationAndDegradedOperation(t *testing.T) {
	modes := []core.ChipFaultMode{
		core.ChipDead, core.ChipStuckOutput, core.ChipSwappedPair, core.ChipPassThrough,
	}
	for _, tc := range acceptanceSwitches {
		stageCount := len(tc.build(t).StageChips())
		for si := 0; si < stageCount; si++ {
			for _, mode := range modes {
				sw := tc.build(t)
				// Chip 1 everywhere: a chip whose failure is observable in
				// every stage (shifter chip 0 rotates by rev(0)=0, so its
				// pass-through failure would be electrically a no-op).
				fault := core.ChipFault{Stage: si, Chip: 1, Mode: mode, A: 0, B: 1}
				plane := core.NewFaultPlane()
				plane.Add(fault)
				if err := sw.SetFaultPlane(plane); err != nil {
					t.Fatal(err)
				}

				rep, err := Scan(sw)
				if err != nil {
					t.Fatalf("%s stage %d %v: %v", tc.name, si, mode, err)
				}
				if rep.Healthy {
					t.Fatalf("%s stage %d %v: scan missed the fault", tc.name, si, mode)
				}
				if len(rep.Faults) != 1 {
					t.Fatalf("%s stage %d %v: localized %v, want exactly one fault", tc.name, si, mode, rep.Faults)
				}
				lf := rep.Faults[0]
				if lf.Stage != si || lf.Chip != 1 {
					t.Fatalf("%s stage %d %v: localized (stage %d, chip %d)", tc.name, si, mode, lf.Stage, lf.Chip)
				}
				// Dead and stuck chips have unambiguous signatures; the scan
				// must also name the mode (and the stuck port).
				switch mode {
				case core.ChipDead:
					if !lf.ModeKnown || lf.Mode != core.ChipDead {
						t.Fatalf("%s stage %d: dead chip classified as %v", tc.name, si, lf)
					}
				case core.ChipStuckOutput:
					if !lf.ModeKnown || lf.Mode != core.ChipStuckOutput ||
						len(lf.Ports) != 1 || lf.Ports[0] != fault.A {
						t.Fatalf("%s stage %d: stuck chip classified as %v", tc.name, si, lf)
					}
				}

				d, err := NewDegradedSwitch(sw, rep.Faults)
				if err != nil {
					t.Fatal(err)
				}
				if d.Outputs() <= 0 || core.Threshold(d) <= 0 {
					t.Fatalf("%s stage %d %v: degraded contract vacuous: m′=%d threshold=%d",
						tc.name, si, mode, d.Outputs(), core.Threshold(d))
				}
				if d.Outputs()+len(d.Quarantined()) != sw.Outputs() {
					t.Fatalf("%s stage %d %v: output accounting off", tc.name, si, mode)
				}

				rng := rand.New(rand.NewSource(int64(si)*16 + int64(mode) + 1))
				for round := 0; round < 200; round++ {
					msgs := switchsim.RandomMessages(rng, sw.Inputs(), 0.08, 0)
					if len(msgs) == 0 {
						continue
					}
					res, err := switchsim.Run(d, msgs)
					if err != nil {
						t.Fatal(err)
					}
					if err := switchsim.CheckGuarantee(d, msgs, res); err != nil {
						t.Fatalf("%s stage %d %v round %d: degraded guarantee violated: %v",
							tc.name, si, mode, round, err)
					}
					if len(msgs) <= core.Threshold(d) && len(res.DroppedInputs) != 0 {
						t.Fatalf("%s stage %d %v round %d: %d post-detection losses at k=%d ≤ threshold %d",
							tc.name, si, mode, round, len(res.DroppedInputs), len(msgs), core.Threshold(d))
					}
				}
			}
		}
	}
}

func TestDegradedContractArithmetic(t *testing.T) {
	sw := newRevsort1024(t)
	stages := sw.StageChips()
	final := len(stages) - 1

	// A final-stage stuck wire quarantines one output: m′ = m−1, ε
	// unchanged.
	stuck := []LocalizedFault{{
		Stage: final, Chip: 3, Mode: core.ChipStuckOutput, ModeKnown: true, Ports: []int{0},
	}}
	d, err := NewDegradedSwitch(sw, stuck)
	if err != nil {
		t.Fatal(err)
	}
	if d.Outputs() != sw.Outputs()-1 {
		t.Fatalf("quarantine: m′ = %d, want %d", d.Outputs(), sw.Outputs()-1)
	}
	if d.EpsilonBound() != sw.EpsilonBound() {
		t.Fatalf("quarantine: ε′ = %d, want %d", d.EpsilonBound(), sw.EpsilonBound())
	}
	if got := d.Quarantined(); len(got) != 1 || got[0] != 3 {
		t.Fatalf("quarantined wires = %v, want [3]", got)
	}

	// A bypassed mid-stage chip keeps every output but pays its port
	// count in ε.
	bypass := []LocalizedFault{{Stage: 0, Chip: 5, Mode: core.ChipDead, ModeKnown: true}}
	d, err = NewDegradedSwitch(sw, bypass)
	if err != nil {
		t.Fatal(err)
	}
	if d.Outputs() != sw.Outputs() {
		t.Fatalf("bypass: m′ = %d, want %d", d.Outputs(), sw.Outputs())
	}
	if d.EpsilonBound() != sw.EpsilonBound()+stages[0].Ports {
		t.Fatalf("bypass: ε′ = %d, want %d", d.EpsilonBound(), sw.EpsilonBound()+stages[0].Ports)
	}
	if d.BypassedChips() != 1 || d.EpsilonPenalty() != stages[0].Ports {
		t.Fatalf("bypass accounting: chips %d penalty %d", d.BypassedChips(), d.EpsilonPenalty())
	}

	// Out-of-range diagnoses are rejected.
	if _, err := NewDegradedSwitch(sw, []LocalizedFault{{Stage: 9, Chip: 0}}); err == nil {
		t.Fatal("NewDegradedSwitch accepted an out-of-range stage")
	}
	if _, err := NewDegradedSwitch(sw, []LocalizedFault{{Stage: 0, Chip: 99}}); err == nil {
		t.Fatal("NewDegradedSwitch accepted an out-of-range chip")
	}
}

func TestDegradedSwitchLeavesLaterFaultsActive(t *testing.T) {
	sw := newColumnsort1024(t)
	plane := core.NewFaultPlane()
	plane.Add(core.ChipFault{Stage: 0, Chip: 1, Mode: core.ChipDead})
	if err := sw.SetFaultPlane(plane); err != nil {
		t.Fatal(err)
	}
	rep, err := Scan(sw)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDegradedSwitch(sw, rep.Faults)
	if err != nil {
		t.Fatal(err)
	}
	// A second fault strikes after the degradation was derived: it must
	// keep hurting through the degraded switch until the next scan.
	plane.Add(core.ChipFault{Stage: 1, Chip: 2, Mode: core.ChipDead})
	rng := rand.New(rand.NewSource(99))
	// k ≤ the degraded threshold, so the contract demands every message
	// be routed — losses to the new dead chip are a visible violation.
	msgs := switchsim.RandomMessages(rng, sw.Inputs(), 0.15, 0)
	if len(msgs) > core.Threshold(d) {
		t.Fatalf("test load too high: k=%d > threshold %d", len(msgs), core.Threshold(d))
	}
	res, err := switchsim.Run(d, msgs)
	if err != nil {
		t.Fatal(err)
	}
	if err := switchsim.CheckGuarantee(d, msgs, res); err == nil {
		t.Fatal("an undetected second dead chip should violate the degraded contract")
	}
	// The next scan sees both faults and the refreshed degradation covers
	// them again.
	rep2, err := Scan(sw)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Faults) != 2 {
		t.Fatalf("second scan localized %v, want both faults", rep2.Faults)
	}
}
