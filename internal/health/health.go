// Package health implements the fault-tolerance plane of the multichip
// switches: BIST-style online fault detection, fault localization down
// to the (stage, chip) that failed, and graceful degradation that keeps
// a switch serving traffic under a provably reduced guarantee.
//
// Detection is a scan: a small fixed set of diagnostic valid patterns
// is routed through the switch's per-stage observability port
// (core.FaultInjectable.TraceWithPlane), and each stage's observed wire
// matrix is compared against the fault-free transform of its observed
// inputs (GoldenStage). Because every stage is checked against its own
// *observed* inputs, a fault never cascades into misattribution: the
// first diverging stage and chip is the faulty one. The final routing
// of every pattern is additionally checked against the Lemma 1/Lemma 2
// oracles (nearsort.CheckPartialConcentration), so the scan also
// catches contract violations whose stage signature is unrecognized.
//
// Degradation follows the partial-concentrator degradation argument:
// masking f untrustworthy outputs of an (n, m, 1−ε/m) switch yields an
// (n, m−f, 1−ε/(m−f)) switch by Lemma 2, and bypassing a faulty chip
// through unsorted spare lanes costs at most its port count in ε. See
// DegradedSwitch.
package health

import (
	"fmt"
	"math/rand"
	"sort"

	"concentrators/internal/bitvec"
	"concentrators/internal/core"
	"concentrators/internal/nearsort"
)

// LocalizedFault is the scan's diagnosis of one failed chip.
type LocalizedFault struct {
	// Stage and Chip address the chip (see core.FaultInjectable.StageChips).
	Stage, Chip int
	// Mode is the inferred failure mode; meaningful only when ModeKnown.
	Mode core.ChipFaultMode
	// ModeKnown reports whether the divergence matched a known failure
	// signature. An unrecognized signature still localizes the chip.
	ModeKnown bool
	// Ports lists the affected output ports (stuck: one, swapped: two).
	Ports []int
	// Pattern is the index of the diagnostic pattern that exposed the
	// fault.
	Pattern int
}

// String renders the diagnosis.
func (f LocalizedFault) String() string {
	mode := "unrecognized"
	if f.ModeKnown {
		mode = f.Mode.String()
	}
	return fmt.Sprintf("stage %d chip %d: %s (ports %v, pattern %d)", f.Stage, f.Chip, mode, f.Ports, f.Pattern)
}

func (f LocalizedFault) key() [2]int { return [2]int{f.Stage, f.Chip} }

// ScanReport is the outcome of one BIST scan.
type ScanReport struct {
	// Healthy is true when no stage diverged and no oracle fired.
	Healthy bool
	// Patterns is the number of diagnostic patterns routed; Routes is
	// the number of Route-equivalent operations spent (the scan's cost
	// in switch setup cycles).
	Patterns, Routes int
	// Faults lists the localized chips, in (stage, chip) order.
	Faults []LocalizedFault
	// SuspectOutputs lists the switch output wires that can no longer
	// be trusted: the final-stage ports of localized faulty chips that
	// fall within [0, m).
	SuspectOutputs []int
	// Violations records end-to-end oracle failures observed on the
	// diagnostic patterns.
	Violations []string
}

// DiagnosticPatterns builds the fixed BIST pattern set for an n-input
// switch with guarantee threshold t: full load, alternating load,
// threshold-sized prefix and suffix bursts, and three seeded
// pseudo-random loads. The set is deterministic — in hardware it would
// be baked into the scan controller's ROM.
func DiagnosticPatterns(n, threshold int) []*bitvec.Vector {
	if threshold < 0 {
		threshold = 0
	}
	if threshold > n {
		threshold = n
	}
	full := bitvec.New(n)
	alt := bitvec.New(n)
	prefix := bitvec.New(n)
	suffix := bitvec.New(n)
	for i := 0; i < n; i++ {
		full.Set(i, true)
		alt.Set(i, i%2 == 0)
		prefix.Set(i, i < threshold)
		suffix.Set(i, i >= n-threshold)
	}
	pats := []*bitvec.Vector{full, alt, prefix, suffix}
	rng := rand.New(rand.NewSource(0xB157))
	for _, load := range []float64{0.05, 0.3, 0.5, 0.8} {
		v := bitvec.New(n)
		for i := 0; i < n; i++ {
			v.Set(i, rng.Float64() < load)
		}
		pats = append(pats, v)
	}
	return pats
}

// staircasePatterns builds two geometry-aware patterns for an
// rows×cols wire matrix: the upper triangle (column j carries j+1
// messages) and the strict upper triangle (column j carries j). After
// the first column sort every matrix row is a ragged right-aligned
// segment, so a row-assigned chip that fails to sort (or a shifter
// that fails to rotate) diverges from its golden line on every row —
// the signature that load-oblivious patterns miss when rows happen to
// be completely full or empty.
func staircasePatterns(rows, cols, n int) []*bitvec.Vector {
	tri := bitvec.New(n)
	strict := bitvec.New(n)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			x := i*cols + j
			if x >= n {
				continue
			}
			tri.Set(x, i <= j)
			strict.Set(x, i < j)
		}
	}
	return []*bitvec.Vector{tri, strict}
}

// Scan routes the diagnostic patterns through sw (with its installed
// fault plane active), checks every chip stage against its golden
// transform, and localizes diverging chips. It returns an error only
// on mechanical failure of the switch interface, never on detection.
func Scan(sw core.FaultInjectable) (*ScanReport, error) {
	stages := sw.StageChips()
	plane := sw.ActiveFaultPlane()
	rep := &ScanReport{}
	found := make(map[[2]int]LocalizedFault)
	pats := DiagnosticPatterns(sw.Inputs(), core.Threshold(sw))
	if len(stages) > 0 {
		st := stages[0]
		rows, cols := st.Ports, st.Chips
		if !st.ChipsAreColumns {
			rows, cols = st.Chips, st.Ports
		}
		pats = append(pats, staircasePatterns(rows, cols, sw.Inputs())...)
	}

	for pi, pat := range pats {
		snaps, out, err := sw.TraceWithPlane(pat, plane)
		if err != nil {
			return nil, fmt.Errorf("health: scan pattern %d: %w", pi, err)
		}
		if len(snaps) != len(stages)+1 {
			return nil, fmt.Errorf("health: switch traced %d snapshots for %d stages", len(snaps), len(stages))
		}
		rep.Patterns++
		rep.Routes++
		for si, st := range stages {
			golden, err := sw.GoldenStage(si, snaps[si])
			if err != nil {
				return nil, fmt.Errorf("health: golden stage %d: %w", si, err)
			}
			for _, chip := range divergingChips(snaps[si+1], golden, st) {
				lf := classify(line(snaps[si+1], st, chip), line(golden, st, chip))
				lf.Stage, lf.Chip, lf.Pattern = si, chip, pi
				old, seen := found[lf.key()]
				if !seen || (!old.ModeKnown && lf.ModeKnown) {
					if seen {
						lf.Pattern = old.Pattern
					}
					found[lf.key()] = lf
				}
			}
		}
		if err := nearsort.CheckPartialConcentration(pat, out, sw.Outputs(), sw.EpsilonBound()); err != nil {
			rep.Violations = append(rep.Violations, fmt.Sprintf("pattern %d: %v", pi, err))
		}
	}

	for _, lf := range found {
		rep.Faults = append(rep.Faults, lf)
	}
	sort.Slice(rep.Faults, func(i, j int) bool {
		if rep.Faults[i].Stage != rep.Faults[j].Stage {
			return rep.Faults[i].Stage < rep.Faults[j].Stage
		}
		return rep.Faults[i].Chip < rep.Faults[j].Chip
	})
	rep.SuspectOutputs = suspectOutputs(rep.Faults, stages, sw.Outputs())
	rep.Healthy = len(rep.Faults) == 0 && len(rep.Violations) == 0
	return rep, nil
}

// divergingChips lists the chips of one stage whose observed output
// line differs from the golden line.
func divergingChips(observed, golden core.Snapshot, st core.StageInfo) []int {
	bad := make(map[int]bool)
	for x := range observed.Cell {
		if observed.Cell[x] == golden.Cell[x] {
			continue
		}
		i, j := x/observed.Cols, x%observed.Cols
		if st.ChipsAreColumns {
			bad[j] = true
		} else {
			bad[i] = true
		}
	}
	chips := make([]int, 0, len(bad))
	for c := range bad {
		chips = append(chips, c)
	}
	sort.Ints(chips)
	return chips
}

// line extracts chip c's output line (its column or row of the wire
// matrix) from a snapshot.
func line(s core.Snapshot, st core.StageInfo, chip int) []int {
	if st.ChipsAreColumns {
		out := make([]int, s.Rows)
		for i := 0; i < s.Rows; i++ {
			out[i] = s.Cell[i*s.Cols+chip]
		}
		return out
	}
	out := make([]int, s.Cols)
	copy(out, s.Cell[chip*s.Cols:(chip+1)*s.Cols])
	return out
}

// classify matches an observed-vs-golden line divergence against the
// known chip failure signatures.
func classify(obs, gold []int) LocalizedFault {
	// Stuck-at-1 output: the phantom marker is directly visible.
	for idx, v := range obs {
		if v == core.CellPhantom {
			return LocalizedFault{Mode: core.ChipStuckOutput, ModeKnown: true, Ports: []int{idx}}
		}
	}
	// Dead chip: every output floats while the golden line is occupied.
	obsEmpty, goldOccupied := true, false
	for idx := range obs {
		if obs[idx] != core.CellEmpty {
			obsEmpty = false
		}
		if gold[idx] != core.CellEmpty {
			goldOccupied = true
		}
	}
	if obsEmpty && goldOccupied {
		return LocalizedFault{Mode: core.ChipDead, ModeKnown: true}
	}
	// Swapped pair: exactly two positions differ and their values cross.
	var diffs []int
	for idx := range obs {
		if obs[idx] != gold[idx] {
			diffs = append(diffs, idx)
		}
	}
	if len(diffs) == 2 && obs[diffs[0]] == gold[diffs[1]] && obs[diffs[1]] == gold[diffs[0]] {
		return LocalizedFault{Mode: core.ChipSwappedPair, ModeKnown: true, Ports: []int{diffs[0], diffs[1]}}
	}
	// Pass-through: same contents, wrong arrangement.
	if sameMultiset(obs, gold) {
		return LocalizedFault{Mode: core.ChipPassThrough, ModeKnown: true}
	}
	return LocalizedFault{}
}

func sameMultiset(a, b []int) bool {
	counts := make(map[int]int, len(a))
	for _, v := range a {
		counts[v]++
	}
	for _, v := range b {
		counts[v]--
	}
	for _, c := range counts {
		if c != 0 {
			return false
		}
	}
	return true
}

// suspectOutputs maps final-stage faults to the switch output wires
// they can corrupt: the faulty chip's ports that land within [0, m).
// Faults in earlier stages corrupt positions data-dependently and are
// handled by chip bypass rather than output masking.
func suspectOutputs(faults []LocalizedFault, stages []core.StageInfo, m int) []int {
	if len(stages) == 0 {
		return nil
	}
	final := len(stages) - 1
	st := stages[final]
	seen := make(map[int]bool)
	for _, f := range faults {
		if f.Stage != final {
			continue
		}
		ports := f.Ports
		if len(ports) == 0 { // whole chip untrustworthy
			ports = make([]int, st.Ports)
			for p := range ports {
				ports[p] = p
			}
		}
		for _, p := range ports {
			pos := wirePosition(st, f.Chip, p)
			if pos < m {
				seen[pos] = true
			}
		}
	}
	out := make([]int, 0, len(seen))
	for pos := range seen {
		out = append(out, pos)
	}
	sort.Ints(out)
	return out
}

// wirePosition converts (chip, port) of the final stage to the
// row-major wire position of the switch's output matrix.
func wirePosition(st core.StageInfo, chip, port int) int {
	if st.ChipsAreColumns {
		// chips are columns: port = row, matrix has st.Chips columns.
		return port*st.Chips + chip
	}
	// chips are rows: port = column, matrix has st.Ports columns.
	return chip*st.Ports + port
}
