package health

import (
	"testing"

	"concentrators/internal/core"
	"concentrators/internal/link"
	"concentrators/internal/switchsim"
)

func TestOutputWireFaultMapping(t *testing.T) {
	for _, tc := range acceptanceSwitches {
		t.Run(tc.name, func(t *testing.T) {
			sw := tc.build(t)
			stages := sw.StageChips()
			final := len(stages) - 1
			for _, wire := range []int{0, 1, sw.Outputs() - 1} {
				lf, err := OutputWireFault(sw, wire)
				if err != nil {
					t.Fatal(err)
				}
				if lf.Stage != final || lf.Mode != core.ChipStuckOutput || !lf.ModeKnown || len(lf.Ports) != 1 {
					t.Fatalf("wire %d: fault %+v not a single final-stage stuck output", wire, lf)
				}
				// The fault must quarantine exactly the wire it names.
				deg, err := NewDegradedSwitch(sw, []LocalizedFault{lf})
				if err != nil {
					t.Fatal(err)
				}
				q := deg.Quarantined()
				if len(q) != 1 || q[0] != wire {
					t.Fatalf("wire %d quarantined %v", wire, q)
				}
				if deg.Outputs() != sw.Outputs()-1 {
					t.Fatalf("wire %d: outputs %d, want %d", wire, deg.Outputs(), sw.Outputs()-1)
				}
			}
			if _, err := OutputWireFault(sw, -1); err == nil {
				t.Error("negative wire accepted")
			}
			if _, err := OutputWireFault(sw, sw.Outputs()); err == nil {
				t.Error("out-of-range wire accepted")
			}
		})
	}
}

// OutputWire inverts the degraded renumbering: degraded output o lives
// on a physical inner wire, skipping quarantined ones.
func TestDegradedOutputWire(t *testing.T) {
	sw := newRevsort1024(t)
	lf, err := OutputWireFault(sw, 5)
	if err != nil {
		t.Fatal(err)
	}
	deg, err := NewDegradedSwitch(sw, []LocalizedFault{lf})
	if err != nil {
		t.Fatal(err)
	}
	for o := 0; o < deg.Outputs(); o++ {
		phys, err := deg.OutputWire(o)
		if err != nil {
			t.Fatal(err)
		}
		want := o
		if o >= 5 {
			want = o + 1 // wire 5 is quarantined
		}
		if phys != want {
			t.Fatalf("degraded output %d on wire %d, want %d", o, phys, want)
		}
	}
	if _, err := deg.OutputWire(deg.Outputs()); err == nil {
		t.Error("out-of-range degraded output accepted")
	}
}

// The ISSUE's bounded-quarantine acceptance: a BER ≥ 0.5 output link
// must be escalated — BIST scan, wire quarantine, recomputed
// (n, m−1, α′) contract — within bounded rounds, with the session
// continuing to deliver clean payloads afterwards.
func TestLinkEscalationQuarantinesNoisyWire(t *testing.T) {
	// 1024/512 so the degraded contract keeps a positive guarantee
	// threshold (the 64/32 revsort has ⌊αm⌋ = 0 even healthy, and the
	// escalator refuses a quarantine that would guarantee nothing).
	sw, err := core.NewRevsortSwitch(1024, 512)
	if err != nil {
		t.Fatal(err)
	}
	outStage := len(sw.StageChips()) // board-level output wires
	plane := link.NewCorruptionPlane(31)
	if err := plane.Add(link.WireFault{Stage: outStage, Wire: 2, Mode: link.WireBitFlip, BER: 0.5}); err != nil {
		t.Fatal(err)
	}
	rounds := 100
	stats, err := RunIntegritySession(sw, switchsim.SessionConfig{
		Policy: switchsim.Resend, Load: 0.9, Rounds: rounds, PayloadBits: 16,
		Seed: 3, AckDelay: 1,
		Integrity: &switchsim.IntegrityConfig{
			CRC: link.CRC16, Window: 4, Corruption: plane,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ist := stats.Integrity
	if ist.LinksQuarantined != 1 || ist.ScanRoutes == 0 {
		t.Fatalf("noisy wire not escalated: %+v", ist)
	}
	bad := link.LinkAddr{Stage: outStage, Wire: 2}
	h := ist.Links[bad]
	if !h.Escalated {
		t.Fatalf("link %v not marked escalated: %+v", bad, h)
	}
	// Bounded detection: conviction needs MinFrames (8) corrupt
	// receptions on the wire; with n=2m the wire carries a path most
	// rounds, so a small multiple of MinFrames bounds the receptions
	// spent before quarantine.
	if h.Frames > 4*8 {
		t.Errorf("quarantine after %d receptions, want ≤ %d", h.Frames, 4*8)
	}
	// Recomputed contract: one wire gone, guarantee still positive.
	if ist.LiveOutputs != 511 || ist.LiveThreshold <= 0 {
		t.Errorf("serving contract (m′=%d, t′=%d), want m′=511 with positive threshold",
			ist.LiveOutputs, ist.LiveThreshold)
	}
	// The session keeps flowing after the quarantine, and the CRC kept
	// every corrupted payload out of Delivered.
	if ist.CorruptedDelivered != 0 {
		t.Errorf("%d corrupted payloads delivered", ist.CorruptedDelivered)
	}
	tail := 0
	for r := rounds / 2; r < rounds; r++ {
		tail += stats.DeliveredPerRound[r]
	}
	if tail == 0 {
		t.Error("no deliveries in the second half of the session")
	}
	if got := stats.Delivered + stats.Dropped + stats.CorruptedDropped + ist.FinalBacklog; got != stats.Offered {
		t.Errorf("conservation broken after quarantine: %d != Offered %d", got, stats.Offered)
	}
}

// Escalation composes with chip faults: the confirming scan sees a
// genuinely failing chip and the rebuilt contract covers both it and
// the distrusted wire.
func TestLinkEscalationComposesWithChipFault(t *testing.T) {
	sw, err := core.NewRevsortSwitch(1024, 512)
	if err != nil {
		t.Fatal(err)
	}
	// A dead stage-1 chip, injected before the session starts.
	fp := core.NewFaultPlane()
	fp.Add(core.ChipFault{Stage: core.RevsortStage1Columns, Chip: 1, Mode: core.ChipDead})
	sw.SetFaultPlane(fp)
	outStage := len(sw.StageChips())
	plane := link.NewCorruptionPlane(17)
	if err := plane.Add(link.WireFault{Stage: outStage, Wire: 4, Mode: link.WireBitFlip, BER: 0.6}); err != nil {
		t.Fatal(err)
	}
	esc := NewLinkEscalator(sw)
	res, err := esc.Escalate(link.LinkAddr{Stage: outStage, Wire: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || res.Serving == nil {
		t.Fatal("escalation produced no serving contract")
	}
	if res.ChipFaults == 0 {
		t.Error("confirming scan missed the dead chip")
	}
	deg, ok := res.Serving.(*DegradedSwitch)
	if !ok {
		t.Fatalf("serving contract is %T", res.Serving)
	}
	q := deg.Quarantined()
	found := false
	for _, w := range q {
		if w == 4 {
			found = true
		}
	}
	if !found {
		t.Errorf("wire 4 not in quarantine set %v", q)
	}
	if deg.BypassedChips() == 0 {
		t.Error("dead chip not bypassed in the degraded contract")
	}
	if ws := esc.Wires(); len(ws) != 1 || ws[0] != 4 {
		t.Errorf("escalator wire set %v", ws)
	}
}

// Guard rails: RunIntegritySession owns the escalator hook.
func TestRunIntegritySessionValidation(t *testing.T) {
	sw := newRevsort1024(t)
	base := switchsim.SessionConfig{
		Policy: switchsim.Resend, Load: 0.2, Rounds: 5, PayloadBits: 4, AckDelay: 1,
	}
	if _, err := RunIntegritySession(sw, base); err == nil {
		t.Error("nil Integrity accepted")
	}
	cfg := base
	cfg.Integrity = &switchsim.IntegrityConfig{CRC: link.CRC8, Escalate: func(link.LinkAddr) (*switchsim.LinkEscalation, error) { return nil, nil }}
	if _, err := RunIntegritySession(sw, cfg); err == nil {
		t.Error("caller-provided Escalate hook accepted")
	}
}
