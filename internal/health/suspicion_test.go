package health

import (
	"reflect"
	"testing"
)

func TestSuspicionClock(t *testing.T) {
	c := NewSuspicionClock(3)
	if _, ok := c.LastKnownGood(0); ok {
		t.Fatal("fresh clock claims a last-known-good contract")
	}
	c.Hear(0, 12)
	if n := c.Miss(1); n != 1 {
		t.Fatalf("first Miss = %d, want 1", n)
	}
	if n := c.Miss(1); n != 2 {
		t.Fatalf("second Miss = %d, want 2", n)
	}
	if c.Unheard(0) != 0 || c.Unheard(1) != 2 {
		t.Fatalf("unheard = (%d,%d), want (0,2)", c.Unheard(0), c.Unheard(1))
	}
	if thr, ok := c.LastKnownGood(0); !ok || thr != 12 {
		t.Fatalf("LastKnownGood(0) = (%d,%v), want (12,true)", thr, ok)
	}
	// Hearing again resets suspicion and refreshes the contract.
	c.Hear(1, 8)
	if c.Unheard(1) != 0 {
		t.Fatal("Hear did not reset suspicion")
	}
	if thr, _ := c.LastKnownGood(1); thr != 8 {
		t.Fatalf("LastKnownGood(1) = %d, want 8", thr)
	}
	// Forget drops both the clock and the stale contract.
	c.Forget(1)
	if _, ok := c.LastKnownGood(1); ok || c.Unheard(1) != 0 {
		t.Fatal("Forget left state behind")
	}
}

func TestSuspicionSnapshotRoundTrip(t *testing.T) {
	c := NewSuspicionClock(2)
	c.Hear(0, 9)
	c.Miss(1)
	c.Miss(1)
	snap := c.Snapshot()
	// Mutating the original must not alias the snapshot.
	c.Hear(1, 4)
	restored := RestoreSuspicionClock(2, snap)
	if restored.Unheard(1) != 2 {
		t.Fatalf("restored Unheard(1) = %d, want 2", restored.Unheard(1))
	}
	if thr, ok := restored.LastKnownGood(0); !ok || thr != 9 {
		t.Fatalf("restored LastKnownGood(0) = (%d,%v), want (9,true)", thr, ok)
	}
	if _, ok := restored.LastKnownGood(1); ok {
		t.Fatal("restored a last-known-good contract that was never heard")
	}
	if !reflect.DeepEqual(restored.Snapshot(), snap) {
		t.Fatal("snapshot → restore → snapshot is not a fixed point")
	}
	// Restore tolerates a size mismatch (membership grew after checkpoint).
	grown := RestoreSuspicionClock(4, snap)
	if grown.Unheard(3) != 0 {
		t.Fatal("padded replica has nonzero suspicion")
	}
}
