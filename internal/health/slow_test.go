package health

import (
	"math"
	"testing"
)

func TestSlowConfigValidate(t *testing.T) {
	good := []SlowConfig{{}, {Window: 16, Quantile: 0.95, Factor: 2, Persistence: 5, MinSamples: 4}}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("valid config %+v rejected: %v", c, err)
		}
	}
	bad := []SlowConfig{
		{Window: -1},
		{Quantile: math.NaN()},
		{Quantile: -0.1},
		{Quantile: 1.5},
		{Factor: math.NaN()},
		{Factor: -1},
		{Factor: 0.5}, // would convict healthy jitter
		{Persistence: -1},
		{MinSamples: -1},
		{Window: 4, MinSamples: 8},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("invalid config %+v accepted", c)
		}
		if _, err := NewSlowDetector(c, 2); err == nil {
			t.Errorf("NewSlowDetector accepted invalid config %+v", c)
		}
	}
	if _, err := NewSlowDetector(SlowConfig{}, 0); err == nil {
		t.Error("detector accepted zero replicas")
	}
}

// A persistent relative outlier is convicted exactly once — after
// Persistence consecutive sweeps — while its equally loaded peers
// never are. No absolute thresholds are involved: both scenarios use
// the same fast/slow ratio at different absolute scales.
func TestSlowDetectorConvictsRelativeOutlier(t *testing.T) {
	for _, scale := range []int{1, 50} {
		d, err := NewSlowDetector(SlowConfig{MinSamples: 4, Persistence: 3}, 3)
		if err != nil {
			t.Fatal(err)
		}
		convictedAt := -1
		for sweep := 0; sweep < 10; sweep++ {
			d.Observe(0, 1*scale)
			d.Observe(1, 1*scale)
			d.Observe(2, 10*scale) // 10× its peers, at any scale
			if got := d.Sweep(); len(got) > 0 {
				if len(got) != 1 || got[0] != 2 {
					t.Fatalf("scale %d: convicted %v, want [2]", scale, got)
				}
				if convictedAt >= 0 {
					t.Fatalf("scale %d: replica 2 convicted twice", scale)
				}
				convictedAt = sweep
			}
		}
		if convictedAt < 0 {
			t.Fatalf("scale %d: persistent 10× outlier never convicted", scale)
		}
		// MinSamples=4 gates the first possible over-line sweep;
		// persistence demands 3 consecutive ones after that.
		if convictedAt < 5 {
			t.Fatalf("scale %d: convicted at sweep %d, before persistence could have elapsed", scale, convictedAt)
		}
	}
}

// A single short GC-like pause against warm windows must never
// convict: the pause's few samples stay inside the watched quantile's
// tail allowance (1−Quantile of the window), so the replica never even
// goes over the line — persistence is the second guard, not the first.
func TestSlowDetectorIgnoresShortPause(t *testing.T) {
	d, err := NewSlowDetector(SlowConfig{}, 2) // Window 32, Quantile 0.9: 3 pause samples tolerated
	if err != nil {
		t.Fatal(err)
	}
	for sweep := 0; sweep < 120; sweep++ {
		d.Observe(0, 1)
		lat := 1
		if sweep >= 60 && sweep < 63 { // one 3-round pause window
			lat = 30
		}
		d.Observe(1, lat)
		if got := d.Sweep(); len(got) > 0 {
			t.Fatalf("sweep %d: pause convicted %v", sweep, got)
		}
	}
}

// Equally fast replicas never convict each other, even with integer
// jitter: the conviction line is floored at the peer median + 1.
func TestSlowDetectorNoConvictionWhenUniform(t *testing.T) {
	d, err := NewSlowDetector(SlowConfig{MinSamples: 2, Persistence: 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for sweep := 0; sweep < 50; sweep++ {
		for r := 0; r < 4; r++ {
			d.Observe(r, 1+(sweep+r)%2)
		}
		if got := d.Sweep(); len(got) > 0 {
			t.Fatalf("uniform pool convicted %v", got)
		}
	}
}

func TestSlowDetectorResetGivesFreshTrial(t *testing.T) {
	d, err := NewSlowDetector(SlowConfig{MinSamples: 2, Persistence: 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	convict := func() bool {
		for sweep := 0; sweep < 10; sweep++ {
			d.Observe(0, 1)
			d.Observe(1, 20)
			if got := d.Sweep(); len(got) > 0 {
				return true
			}
		}
		return false
	}
	if !convict() {
		t.Fatal("outlier never convicted")
	}
	d.Reset(1)
	if _, ok := d.Quantile(1); ok {
		t.Fatal("reset window still produces a quantile")
	}
	if _, ok := d.PeerMedian(0); ok {
		t.Fatal("peer median survives with the only peer reset")
	}
	// The repaired replica comes back fast: no re-conviction.
	for sweep := 0; sweep < 20; sweep++ {
		d.Observe(0, 1)
		d.Observe(1, 1)
		if got := d.Sweep(); len(got) > 0 {
			t.Fatalf("repaired replica re-convicted: %v", got)
		}
	}
}
