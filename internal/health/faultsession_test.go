package health

import (
	"testing"

	"concentrators/internal/core"
	"concentrators/internal/switchsim"
)

func TestGenerateFaultScheduleDeterministic(t *testing.T) {
	sw := newRevsort1024(t)
	a := GenerateFaultSchedule(42, sw, 20, 200, 5)
	b := GenerateFaultSchedule(42, sw, 20, 200, 5)
	if len(a) == 0 {
		t.Fatal("mtbf 20 over 200 rounds generated no faults")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed gave %d vs %d faults", len(a), len(b))
	}
	seen := make(map[[2]int]bool)
	last := -1
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at fault %d: %v vs %v", i, a[i], b[i])
		}
		if a[i].Round < last || a[i].Round >= 200 {
			t.Fatalf("fault %d at round %d out of order or range", i, a[i].Round)
		}
		last = a[i].Round
		key := [2]int{a[i].Fault.Stage, a[i].Fault.Chip}
		if seen[key] {
			t.Fatalf("chip (%d,%d) failed twice", key[0], key[1])
		}
		seen[key] = true
		if err := core.ValidateFaultPlane(sw, planeOf(a[i].Fault)); err != nil {
			t.Fatalf("scheduled fault invalid: %v", err)
		}
	}
	if GenerateFaultSchedule(42, sw, 0, 200, 5) != nil {
		t.Fatal("mtbf 0 must disable the fault process")
	}
}

func planeOf(f core.ChipFault) *core.FaultPlane {
	p := core.NewFaultPlane()
	p.Add(f)
	return p
}

func TestFaultSessionConfigValidate(t *testing.T) {
	sw := newColumnsort1024(t)
	valid := FaultSessionConfig{
		SessionConfig: switchsim.SessionConfig{
			Policy: switchsim.Drop, Load: 0.5, Rounds: 10, PayloadBits: 1,
		},
		Schedule:  []ScheduledFault{{Round: 2, Fault: core.ChipFault{Stage: 0, Chip: 0, Mode: core.ChipDead}}},
		ScanEvery: 5,
	}
	if err := valid.Validate(sw); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	for _, tc := range []struct {
		name   string
		mutate func(*FaultSessionConfig)
	}{
		{"negative rounds", func(c *FaultSessionConfig) { c.Rounds = -1 }},
		{"load out of range", func(c *FaultSessionConfig) { c.Load = 2 }},
		{"zero payload bits", func(c *FaultSessionConfig) { c.PayloadBits = 0 }},
		{"negative scan period", func(c *FaultSessionConfig) { c.ScanEvery = -1 }},
		{"negative backoff cap", func(c *FaultSessionConfig) { c.BackoffMax = -4 }},
		{"fault before session", func(c *FaultSessionConfig) { c.Schedule[0].Round = -1 }},
		{"fault after session", func(c *FaultSessionConfig) { c.Schedule[0].Round = c.Rounds }},
		{"fault stage out of range", func(c *FaultSessionConfig) { c.Schedule[0].Fault.Stage = 99 }},
		{"fault chip out of range", func(c *FaultSessionConfig) { c.Schedule[0].Fault.Chip = 9999 }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := valid
			cfg.Schedule = []ScheduledFault{valid.Schedule[0]}
			tc.mutate(&cfg)
			if err := cfg.Validate(sw); err == nil {
				t.Errorf("Validate accepted %+v", cfg)
			}
			if _, err := RunFaultAwareSession(sw, cfg); err == nil {
				t.Errorf("RunFaultAwareSession accepted %+v", cfg)
			}
		})
	}
}

// TestFaultAwareSessionDetectsAndRecovers runs the full loop: traffic,
// a mid-session chip death, online violation-triggered scan,
// localization, degradation, and recovery with the Resend policy.
func TestFaultAwareSessionDetectsAndRecovers(t *testing.T) {
	sw := newRevsort1024(t)
	fault := core.ChipFault{Stage: core.RevsortStage3Columns, Chip: 2, Mode: core.ChipDead}
	cfg := FaultSessionConfig{
		SessionConfig: switchsim.SessionConfig{
			Policy:      switchsim.Resend,
			Load:        0.08,
			Rounds:      60,
			PayloadBits: 1,
			Seed:        7,
			AckDelay:    1,
		},
		Schedule:        []ScheduledFault{{Round: 10, Fault: fault}},
		ScanEvery:       50,
		ScanOnViolation: true,
	}
	stats, err := RunFaultAwareSession(sw, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.FaultsInjected != 1 {
		t.Fatalf("FaultsInjected = %d, want 1", stats.FaultsInjected)
	}
	if stats.FaultsDetected != 1 || len(stats.Detections) != 1 {
		t.Fatalf("FaultsDetected = %d (%v), want 1", stats.FaultsDetected, stats.Detections)
	}
	det := stats.Detections[0]
	if det.Fault.Stage != fault.Stage || det.Fault.Chip != fault.Chip {
		t.Fatalf("detected %v, want stage %d chip %d", det.Fault, fault.Stage, fault.Chip)
	}
	if det.Round < 10 || det.LatencyRounds < 0 || det.LatencyRounds > 10 {
		t.Fatalf("detection at round %d with latency %d: online detector too slow", det.Round, det.LatencyRounds)
	}
	if stats.GuaranteeViolations == 0 {
		t.Fatal("a dead final-stage chip under traffic must violate the contract at least once")
	}
	if stats.LostBeforeDetection == 0 {
		t.Fatal("the dead chip destroyed messages before detection; stats must show it")
	}
	if stats.LostAfterDetection != 0 {
		t.Fatalf("LostAfterDetection = %d, want 0: the degradation must stop the bleeding", stats.LostAfterDetection)
	}
	if stats.DegradedOutputs != sw.Outputs() {
		t.Fatalf("bypass degradation keeps all outputs; DegradedOutputs = %d", stats.DegradedOutputs)
	}
	wantThr := sw.Outputs() - (sw.EpsilonBound() + 32) // one bypassed 32-port chip
	if stats.DegradedThreshold != wantThr {
		t.Fatalf("DegradedThreshold = %d, want %d", stats.DegradedThreshold, wantThr)
	}
	if stats.PostDegradationAlpha <= 0 || stats.PostDegradationAlpha >= 1 {
		t.Fatalf("PostDegradationAlpha = %v out of (0,1)", stats.PostDegradationAlpha)
	}
	if stats.Scans < 2 || stats.ScanRoutes == 0 || stats.ScanOverhead <= 0 || stats.ScanOverhead >= 1 {
		t.Fatalf("scan accounting off: %d scans, %d routes, overhead %v",
			stats.Scans, stats.ScanRoutes, stats.ScanOverhead)
	}
	if stats.Retries == 0 {
		t.Fatal("Resend must have retried the messages the fault destroyed")
	}
	if stats.Delivered == 0 || stats.MaxOffered == 0 {
		t.Fatal("session carried no traffic")
	}
	sum := 0
	for _, c := range stats.DeliveredPerRound {
		sum += c
	}
	if sum != stats.Delivered {
		t.Fatalf("DeliveredPerRound sums to %d, Delivered = %d", sum, stats.Delivered)
	}
}

// TestFaultAwareSessionPeriodicScan verifies the ScanEvery cadence
// bounds detection latency for faults too subtle to trip the online
// contract check.
func TestFaultAwareSessionPeriodicScan(t *testing.T) {
	sw := newColumnsort1024(t)
	fault := core.ChipFault{Stage: core.ColumnsortStage1, Chip: 3, Mode: core.ChipSwappedPair, A: 0, B: 1}
	cfg := FaultSessionConfig{
		SessionConfig: switchsim.SessionConfig{
			Policy:      switchsim.Drop,
			Load:        0.05,
			Rounds:      25,
			PayloadBits: 1,
			Seed:        3,
		},
		Schedule:  []ScheduledFault{{Round: 5, Fault: fault}},
		ScanEvery: 10,
	}
	stats, err := RunFaultAwareSession(sw, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.FaultsDetected != 1 {
		t.Fatalf("FaultsDetected = %d (%v), want 1", stats.FaultsDetected, stats.Detections)
	}
	det := stats.Detections[0]
	if det.Round != 10 || det.LatencyRounds != 5 {
		t.Fatalf("periodic scan detected at round %d latency %d, want round 10 latency 5", det.Round, det.LatencyRounds)
	}
	if stats.Scans != 3 { // rounds 0, 10, 20
		t.Fatalf("Scans = %d, want 3", stats.Scans)
	}
}

// TestFaultAwareSessionBackoff drives persistent congestion through a
// healthy switch under Resend with bounded exponential backoff.
func TestFaultAwareSessionBackoff(t *testing.T) {
	sw, err := core.NewColumnsortSwitch(8, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	cfg := FaultSessionConfig{
		SessionConfig: switchsim.SessionConfig{
			Policy:      switchsim.Resend,
			Load:        1.0,
			Rounds:      20,
			PayloadBits: 1,
			Seed:        5,
			AckDelay:    1,
		},
		ScanEvery:  5,
		BackoffMax: 4,
	}
	stats, err := RunFaultAwareSession(sw, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.FaultsDetected != 0 || stats.GuaranteeViolations != 0 {
		t.Fatalf("healthy switch reported faults: %d detected, %d violations",
			stats.FaultsDetected, stats.GuaranteeViolations)
	}
	if stats.Scans != 4 { // rounds 0, 5, 10, 15
		t.Fatalf("Scans = %d, want 4", stats.Scans)
	}
	if stats.Retries == 0 || stats.MaxBacklog == 0 {
		t.Fatalf("full load must build a retry backlog: retries %d, backlog %d",
			stats.Retries, stats.MaxBacklog)
	}
	if stats.Dropped != 0 {
		t.Fatalf("Resend never drops, Dropped = %d", stats.Dropped)
	}
	if stats.LostBeforeDetection != 0 || stats.LostAfterDetection != 0 {
		t.Fatalf("congestion is not fault loss: before %d after %d",
			stats.LostBeforeDetection, stats.LostAfterDetection)
	}
}
