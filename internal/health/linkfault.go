package health

import (
	"fmt"

	"concentrators/internal/core"
)

// OutputWireFault converts a distrusted board-level output wire into
// the LocalizedFault that quarantines exactly that wire: the wire is
// attributed to its final-stage chip and port as a stuck-output fault,
// which NewDegradedSwitch handles by masking the wire and re-driving
// anything concentrated onto it — the Lemma 2 (n, m−1, 1−ε/(m−1))
// degradation.
//
// This is the escalation path for the wire-level corruption plane: a
// link whose EWMA corruption rate stays over threshold is handed to
// the health plane exactly like a stuck output pin, even though the
// chip behind it sorts perfectly — the wire, not the chip, is the
// fault.
func OutputWireFault(sw core.FaultInjectable, wire int) (LocalizedFault, error) {
	stages := sw.StageChips()
	if len(stages) == 0 {
		return LocalizedFault{}, fmt.Errorf("health: %s has no chip stages", sw.Name())
	}
	if wire < 0 || wire >= sw.Outputs() {
		return LocalizedFault{}, fmt.Errorf("health: output wire %d out of range [0,%d)", wire, sw.Outputs())
	}
	final := len(stages) - 1
	st := stages[final]
	var chip, port int
	if st.ChipsAreColumns {
		// wirePosition: pos = port·Chips + chip.
		chip, port = wire%st.Chips, wire/st.Chips
	} else {
		// wirePosition: pos = chip·Ports + port.
		chip, port = wire/st.Ports, wire%st.Ports
	}
	return LocalizedFault{
		Stage:     final,
		Chip:      chip,
		Mode:      core.ChipStuckOutput,
		ModeKnown: true,
		Ports:     []int{port},
	}, nil
}

// OutputWire returns the physical inner output wire that degraded
// output o drives — the address the wire-level corruption plane and
// link monitor key on. Receivers observe corruption on physical
// board wires; the degraded contract only renumbers them.
func (d *DegradedSwitch) OutputWire(o int) (int, error) {
	if o < 0 || o >= d.Outputs() {
		return 0, fmt.Errorf("health: degraded output %d out of range [0,%d)", o, d.Outputs())
	}
	for inner, mapped := range d.remap {
		if mapped == o {
			return inner, nil
		}
	}
	return 0, fmt.Errorf("health: degraded output %d has no inner wire", o)
}
