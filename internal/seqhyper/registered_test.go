package seqhyper

import (
	"math/rand"
	"testing"

	"concentrators/internal/bitvec"
	"concentrators/internal/hyper"
)

func TestBuildRegisteredValidation(t *testing.T) {
	for _, n := range []int{0, 1, 3, 12} {
		if _, err := BuildRegistered(n); err == nil {
			t.Errorf("BuildRegistered(%d) accepted", n)
		}
	}
}

// The registered pipeline must deliver every payload intact on the
// outputs the stable concentration assigns — exhaustive over all valid
// patterns at n = 8.
func TestRegisteredMatchesFunctionalExhaustive8(t *testing.T) {
	n := 8
	r, err := BuildRegistered(n)
	if err != nil {
		t.Fatal(err)
	}
	c := hyper.MustChip(n)
	rng := rand.New(rand.NewSource(61))
	for pat := 0; pat < 1<<uint(n); pat++ {
		r.Reset()
		v := bitvec.New(n)
		for i := 0; i < n; i++ {
			v.Set(i, pat&(1<<uint(i)) != 0)
		}
		payloads := map[int][]bool{}
		const length = 6
		for i := 0; i < n; i++ {
			if v.Get(i) {
				p := make([]bool, length)
				for b := range p {
					p[b] = rng.Intn(2) == 1
				}
				payloads[i] = p
			}
		}
		streams, cycles, err := r.Run(v, payloads)
		if err != nil {
			t.Fatalf("pattern %02x: %v", pat, err)
		}
		route, _ := c.Setup(v)
		for i, p := range payloads {
			o := route[i]
			got := streams[o]
			if len(got) != length {
				t.Fatalf("pattern %02x: output %d got %d bits, want %d", pat, o, len(got), length)
			}
			for b := range p {
				if got[b] != p[b] {
					t.Fatalf("pattern %02x: payload of input %d corrupted at bit %d", pat, i, b)
				}
			}
		}
		if len(payloads) > 0 {
			wantCycles := r.SetupLatency() + length + r.StreamLatency()
			if cycles != wantCycles {
				t.Fatalf("pattern %02x: cycles = %d, want %d", pat, cycles, wantCycles)
			}
		}
	}
}

func TestRegisteredRandom16(t *testing.T) {
	n := 16
	r, err := BuildRegistered(n)
	if err != nil {
		t.Fatal(err)
	}
	c := hyper.MustChip(n)
	rng := rand.New(rand.NewSource(62))
	for trial := 0; trial < 15; trial++ {
		r.Reset()
		v := bitvec.New(n)
		for i := 0; i < n; i++ {
			v.Set(i, rng.Intn(2) == 1)
		}
		payloads := map[int][]bool{}
		for i := 0; i < n; i++ {
			if v.Get(i) {
				p := make([]bool, 10)
				for b := range p {
					p[b] = rng.Intn(2) == 1
				}
				payloads[i] = p
			}
		}
		streams, _, err := r.Run(v, payloads)
		if err != nil {
			t.Fatal(err)
		}
		route, _ := c.Setup(v)
		for i, p := range payloads {
			got := streams[route[i]]
			for b := range p {
				if b >= len(got) || got[b] != p[b] {
					t.Fatalf("trial %d: payload of input %d corrupted", trial, i)
				}
			}
		}
	}
}

func TestRegisteredRunValidation(t *testing.T) {
	r, err := BuildRegistered(8)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Run(bitvec.New(9), nil); err == nil {
		t.Error("accepted wrong valid length")
	}
	v := bitvec.New(8)
	if _, _, err := r.Run(v, map[int][]bool{3: {true}}); err == nil {
		t.Error("accepted payload on invalid input")
	}
	v.Set(1, true)
	v.Set(2, true)
	r.Reset()
	if _, _, err := r.Run(v, map[int][]bool{1: {true}, 2: {true, false}}); err == nil {
		t.Error("accepted ragged payloads")
	}
}

// The point of pipelining: the registered design's CLOCK PERIOD depth
// is far below the combinational chip's full-datapath depth, at the
// price of registers and latency.
func TestRegisteredClockPeriodBeatsCombinationalDepth(t *testing.T) {
	for _, n := range []int{16, 64} {
		r, err := BuildRegistered(n)
		if err != nil {
			t.Fatal(err)
		}
		clk, err := r.ClockPeriodDepth()
		if err != nil {
			t.Fatal(err)
		}
		comb, err := hyper.BuildNetlist(n)
		if err != nil {
			t.Fatal(err)
		}
		full := comb.Net.Depth()
		if clk >= full {
			t.Errorf("n=%d: clock-period depth %d should beat full combinational depth %d", n, clk, full)
		}
		if r.Registers() == 0 {
			t.Error("pipelined design should have registers")
		}
		if r.SetupLatency() <= 1 || r.StreamLatency() < 1 {
			t.Error("latencies implausible")
		}
	}
}
