// Package seqhyper implements the OTHER hyperconcentrator §1 of the
// paper mentions: "a different hyperconcentrator switch, comprised of a
// parallel prefix circuit and a butterfly network, can be built in
// volume Θ(n^{3/2}) with O(n lg n) chips and as few as four data pins
// per chip, but this switch is not combinational."
//
// The model here is cycle-accurate and registered: the setup phase runs
// the prefix tree (an up-sweep and a down-sweep, one tree level per
// clock) and then configures the butterfly one level per clock; the
// streaming phase pushes payload bits through the lg n butterfly
// register stages, one level per cycle, fully pipelined (throughput one
// bit per cycle per path after the pipeline fills).
//
// It exists as the paper's own baseline: the partial concentrator
// switches of §4/§5 are COMBINATIONAL (a bit crosses the whole switch
// within one cycle, costing only gate delays); this design needs
// multi-cycle setup and per-level registers but gets away with tiny
// chips.
package seqhyper

import (
	"fmt"

	"concentrators/internal/bitvec"
)

// Switch is a sequential n-by-n hyperconcentrator (n a power of two).
type Switch struct {
	n, q int

	// configured state after Setup:
	levelNext [][]int // levelNext[ℓ][node] = node at level ℓ+1, or −1
	routing   []int   // input → output (−1 for invalid inputs)

	// pipeline registers: regs[ℓ][node] holds the bit in flight between
	// level ℓ and ℓ+1 (valid flag + value).
	regs  [][]regBit
	ticks int
}

type regBit struct {
	valid bool
	bit   bool
}

// New returns a sequential hyperconcentrator of size n (power of two ≥ 2).
func New(n int) (*Switch, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("seqhyper: size %d must be a power of two ≥ 2", n)
	}
	q := 0
	for 1<<uint(q) < n {
		q++
	}
	return &Switch{n: n, q: q}, nil
}

// Size returns n.
func (s *Switch) Size() int { return s.n }

// Levels returns lg n, the butterfly depth (= streaming latency in
// cycles).
func (s *Switch) Levels() int { return s.q }

// SetupCycles returns the number of clock cycles the setup phase
// consumes: an up-sweep and down-sweep of the prefix tree (2 lg n) plus
// one configuration wave through the butterfly (lg n).
func (s *Switch) SetupCycles() int { return 3 * s.q }

// Setup computes ranks with the prefix tree and configures the
// butterfly levels. It returns the input→output routing (stable
// concentration) and resets the streaming pipeline.
func (s *Switch) Setup(valid *bitvec.Vector) ([]int, error) {
	if valid.Len() != s.n {
		return nil, fmt.Errorf("seqhyper: %d valid bits on a %d-input switch", valid.Len(), s.n)
	}
	// Destination of input i = exclusive prefix count of valid bits
	// (what the parallel prefix circuit computes during setup).
	dest := make([]int, s.n)
	rank := 0
	for i := 0; i < s.n; i++ {
		if valid.Get(i) {
			dest[i] = rank
			rank++
		} else {
			dest[i] = -1
		}
	}
	// Configure the LSB-first butterfly level by level (the
	// configuration wave). This routing is conflict-free for
	// concentration (see internal/banyan).
	s.levelNext = make([][]int, s.q)
	pos := append([]int(nil), dest...) // pos[node] = destination of packet at node
	s.routing = make([]int, s.n)
	for i := range s.routing {
		s.routing[i] = -1
	}
	src := make([]int, s.n)
	for i := range src {
		src[i] = i
	}
	for lvl := 0; lvl < s.q; lvl++ {
		next := make([]int, s.n)
		nextSrc := make([]int, s.n)
		for i := range next {
			next[i] = -1
			nextSrc[i] = -1
		}
		s.levelNext[lvl] = make([]int, s.n)
		for i := range s.levelNext[lvl] {
			s.levelNext[lvl][i] = -1
		}
		mask := 1 << uint(lvl)
		for node := 0; node < s.n; node++ {
			d := pos[node]
			if d == -1 {
				continue
			}
			tgt := node &^ mask
			if d&mask != 0 {
				tgt = node | mask
			}
			if next[tgt] != -1 {
				return nil, fmt.Errorf("seqhyper: internal conflict at level %d node %d", lvl, node)
			}
			next[tgt] = d
			nextSrc[tgt] = src[node]
			s.levelNext[lvl][node] = tgt
		}
		pos = next
		src = nextSrc
	}
	for node := 0; node < s.n; node++ {
		if src[node] != -1 {
			s.routing[src[node]] = node
		}
	}
	// Reset the streaming pipeline.
	s.regs = make([][]regBit, s.q)
	for l := range s.regs {
		s.regs[l] = make([]regBit, s.n)
	}
	s.ticks = 0
	return append([]int(nil), s.routing...), nil
}

// Tick advances the streaming pipeline one clock cycle: in[i] is the
// payload bit presented at input i this cycle (only inputs that were
// valid at setup drive bits; others are ignored). It returns the bits
// emerging at the outputs this cycle: out[o] is non-nil when output o's
// register delivered a bit.
func (s *Switch) Tick(in map[int]bool) (map[int]bool, error) {
	if s.levelNext == nil {
		return nil, fmt.Errorf("seqhyper: Tick before Setup")
	}
	// Drain the last level first.
	out := map[int]bool{}
	for node, rb := range s.regs[s.q-1] {
		if rb.valid {
			out[node] = rb.bit
		}
	}
	// Shift levels back to front.
	for l := s.q - 1; l >= 1; l-- {
		dst := make([]regBit, s.n)
		for node, rb := range s.regs[l-1] {
			if !rb.valid {
				continue
			}
			tgt := s.levelNext[l][node]
			if tgt == -1 {
				return nil, fmt.Errorf("seqhyper: bit stranded at level %d node %d", l, node)
			}
			dst[tgt] = regBit{valid: true, bit: rb.bit}
		}
		s.regs[l] = dst
	}
	// Inject new bits through level 0.
	first := make([]regBit, s.n)
	for i, b := range in {
		if i < 0 || i >= s.n {
			return nil, fmt.Errorf("seqhyper: input %d out of range", i)
		}
		tgt := s.levelNext[0][i]
		if tgt == -1 {
			continue // input was invalid at setup: bit dropped at the door
		}
		first[tgt] = regBit{valid: true, bit: b}
	}
	s.regs[0] = first
	s.ticks++
	return out, nil
}

// Stream pushes equal-length payloads through the pipeline and returns
// the per-output delivered streams. Total cycles = len + Levels()
// (pipeline fill), on top of SetupCycles() consumed conceptually by
// Setup.
func (s *Switch) Stream(payloads map[int][]bool) (map[int][]bool, int, error) {
	length := -1
	for i, p := range payloads {
		if s.routing == nil || i < 0 || i >= s.n || s.routing[i] == -1 {
			return nil, 0, fmt.Errorf("seqhyper: payload on unrouted input %d", i)
		}
		if length == -1 {
			length = len(p)
		} else if len(p) != length {
			return nil, 0, fmt.Errorf("seqhyper: payloads must share one length")
		}
	}
	if length == -1 {
		return map[int][]bool{}, 0, nil
	}
	streams := map[int][]bool{}
	cycles := 0
	for c := 0; c < length+s.q; c++ {
		in := map[int]bool{}
		if c < length {
			for i, p := range payloads {
				in[i] = p[c]
			}
		}
		out, err := s.Tick(in)
		if err != nil {
			return nil, 0, err
		}
		for o, b := range out {
			streams[o] = append(streams[o], b)
		}
		cycles++
	}
	return streams, cycles, nil
}

// --- §1 cost model -----------------------------------------------------------

// PinsPerChip returns the data pin count of the smallest chip
// partitioning: one 2×2 butterfly switch element per chip, four data
// pins ("as few as four data pins per chip").
func PinsPerChip() int { return 4 }

// ChipCount returns the O(n lg n) chip count: (n/2)·lg n butterfly
// elements plus n−1 prefix tree nodes.
func ChipCount(n int) int {
	q := 0
	for 1<<uint(q) < n {
		q++
	}
	return n/2*q + (n - 1)
}

// Volume returns the Θ(n^{3/2}) packaging volume of §1's claim (unit
// constant).
func Volume(n int) float64 {
	f := float64(n)
	r := 1.0
	for r*r < f {
		r++
	}
	return f * r // n · √n
}
