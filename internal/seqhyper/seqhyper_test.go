package seqhyper

import (
	"math/rand"
	"testing"

	"concentrators/internal/bitvec"
	"concentrators/internal/hyper"
)

func TestNewValidation(t *testing.T) {
	for _, n := range []int{0, 1, 3, 12} {
		if _, err := New(n); err == nil {
			t.Errorf("New(%d) accepted", n)
		}
	}
	s, err := New(16)
	if err != nil || s.Size() != 16 || s.Levels() != 4 {
		t.Fatalf("New(16) = %v, %v", s, err)
	}
	if s.SetupCycles() != 12 {
		t.Errorf("SetupCycles = %d, want 12 (= 3 lg n)", s.SetupCycles())
	}
}

// Setup must realize exactly the stable concentration of the
// single-chip hyperconcentrator, for every pattern at n = 16.
func TestSetupMatchesHyperChipExhaustive(t *testing.T) {
	n := 16
	s, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	c := hyper.MustChip(n)
	for pat := 0; pat < 1<<uint(n); pat++ {
		v := bitvec.New(n)
		for i := 0; i < n; i++ {
			v.Set(i, pat&(1<<uint(i)) != 0)
		}
		got, err := s.Setup(v)
		if err != nil {
			t.Fatalf("pattern %04x: %v", pat, err)
		}
		want, _ := c.Setup(v)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("pattern %04x input %d: %d vs %d", pat, i, got[i], want[i])
			}
		}
	}
}

func TestSetupWrongLength(t *testing.T) {
	s, _ := New(8)
	if _, err := s.Setup(bitvec.New(9)); err == nil {
		t.Error("accepted wrong valid length")
	}
}

func TestTickBeforeSetup(t *testing.T) {
	s, _ := New(8)
	if _, err := s.Tick(nil); err == nil {
		t.Error("Tick before Setup accepted")
	}
}

func TestStreamDeliversPayloads(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for _, n := range []int{4, 16, 64, 256} {
		s, err := New(n)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 20; trial++ {
			v := bitvec.New(n)
			for i := 0; i < n; i++ {
				v.Set(i, rng.Intn(2) == 1)
			}
			routing, err := s.Setup(v)
			if err != nil {
				t.Fatal(err)
			}
			payloads := map[int][]bool{}
			length := 8
			for i := 0; i < n; i++ {
				if v.Get(i) {
					p := make([]bool, length)
					for b := range p {
						p[b] = rng.Intn(2) == 1
					}
					payloads[i] = p
				}
			}
			streams, cycles, err := s.Stream(payloads)
			if err != nil {
				t.Fatal(err)
			}
			if len(payloads) > 0 && cycles != length+s.Levels() {
				t.Fatalf("n=%d: cycles = %d, want %d (payload + pipeline fill)", n, cycles, length+s.Levels())
			}
			for i, p := range payloads {
				o := routing[i]
				got := streams[o]
				if len(got) != length {
					t.Fatalf("n=%d: output %d received %d bits, want %d", n, o, len(got), length)
				}
				for b := range p {
					if got[b] != p[b] {
						t.Fatalf("n=%d: payload of input %d corrupted at bit %d", n, i, b)
					}
				}
			}
		}
	}
}

func TestStreamValidation(t *testing.T) {
	s, _ := New(8)
	v := bitvec.New(8)
	v.Set(2, true)
	if _, err := s.Setup(v); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Stream(map[int][]bool{3: {true}}); err == nil {
		t.Error("accepted payload on unrouted input")
	}
	if _, _, err := s.Stream(map[int][]bool{2: {true}}); err != nil {
		t.Errorf("rejected valid stream: %v", err)
	}
	v.Set(3, true)
	if _, err := s.Setup(v); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Stream(map[int][]bool{2: {true}, 3: {true, false}}); err == nil {
		t.Error("accepted ragged payloads")
	}
}

// Pipelining: after the lg n fill, one bit per cycle per path emerges —
// bit latency equals Levels().
func TestPipelineLatency(t *testing.T) {
	n := 16
	s, _ := New(n)
	v := bitvec.New(n)
	v.Set(5, true)
	routing, err := s.Setup(v)
	if err != nil {
		t.Fatal(err)
	}
	o := routing[5]
	// Feed one bit, then idle; it must appear exactly Levels() cycles
	// later.
	if out, err := s.Tick(map[int]bool{5: true}); err != nil || len(out) != 0 {
		t.Fatalf("cycle 0: out = %v, err = %v", out, err)
	}
	for c := 1; c < s.Levels(); c++ {
		out, err := s.Tick(nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 0 {
			t.Fatalf("bit emerged early at cycle %d", c)
		}
	}
	out, err := s.Tick(nil)
	if err != nil {
		t.Fatal(err)
	}
	b, ok := out[o]
	if !ok || !b {
		t.Fatalf("bit did not emerge at output %d after %d cycles: %v", o, s.Levels(), out)
	}
}

func TestCostModel(t *testing.T) {
	if PinsPerChip() != 4 {
		t.Error("the §1 claim is four data pins per chip")
	}
	// n=1024: (512·10) + 1023 = 6143 chips — O(n lg n).
	if got := ChipCount(1024); got != 6143 {
		t.Errorf("ChipCount(1024) = %d, want 6143", got)
	}
	// Volume Θ(n^{3/2}).
	if v := Volume(1024); v != 1024*32 {
		t.Errorf("Volume(1024) = %v, want 32768", v)
	}
}

// The paper's comparison: the sequential design has tiny chips but
// multi-cycle latency, while the combinational partial concentrators
// cross in one cycle. Check the structural facts that comparison rests
// on.
func TestSequentialVsCombinationalTradeoff(t *testing.T) {
	n := 4096
	s, _ := New(n)
	if s.SetupCycles() < 3 {
		t.Error("setup should take multiple cycles")
	}
	if PinsPerChip() >= hyper.DataPins(64) {
		t.Error("sequential chips should need far fewer pins than a 64-wide hyperconcentrator chip")
	}
	if ChipCount(n) <= 4*64 /* revsort chips at n=4096 */ {
		t.Error("the sequential design should need many more chips")
	}
}
