package seqhyper

import (
	"fmt"

	"concentrators/internal/bitvec"
	"concentrators/internal/logic"
	"concentrators/internal/prefix"
)

// RegNetlist is the gate-level, fully registered realization of the §1
// sequential hyperconcentrator. Unlike the combinational chip
// (internal/hyper), every stage is separated by edge-triggered
// registers, so the CLOCK PERIOD is bounded by one stage's logic rather
// than the whole datapath:
//
//   - a pipelined Sklansky rank unit (lg n register stages, one combine
//     level of adders each) computes each input's destination;
//   - a setup wave then traverses the lg n butterfly levels, latching
//     each level's crossbar setting as it passes;
//   - payload bits stream behind the wave, one butterfly level per
//     cycle, routed by the latched settings.
//
// Setup latency is 2·lg n cycles (rank pipeline + wave), streaming
// latency lg n cycles — the "sequential control [that] is not very
// complex, but ... not as simple as that of a combinational circuit".
type RegNetlist struct {
	seq  *logic.SeqNet
	n, q int

	inValid []logic.Signal
	inData  []logic.Signal

	outValid []int // indices into Step output
	outData  []int
}

// BuildRegistered emits the registered netlist for n a power of two ≥ 2.
func BuildRegistered(n int) (*RegNetlist, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("seqhyper: registered netlist needs power-of-two n ≥ 2, got %d", n)
	}
	q := 0
	for 1<<uint(q) < n {
		q++
	}
	w := prefix.CountWidth(n)

	s := logic.NewSeq()
	c := s.Comb()
	r := &RegNetlist{seq: s, n: n, q: q}
	for i := 0; i < n; i++ {
		r.inValid = append(r.inValid, s.Input(fmt.Sprintf("valid.%d", i)))
	}
	for i := 0; i < n; i++ {
		r.inData = append(r.inData, s.Input(fmt.Sprintf("data.%d", i)))
	}

	// --- Stage A: pipelined Sklansky rank unit --------------------------
	// Each of the q register stages performs one Sklansky combine level;
	// the valid wave is delayed alongside so it arrives with its ranks.
	mkRegBus := func(name string, width int) logic.Bus {
		bus := make(logic.Bus, width)
		for b := range bus {
			bus[b] = s.Register(fmt.Sprintf("%s.%d", name, b), false)
		}
		return bus
	}
	connectBus := func(q logic.Bus, d logic.Bus) {
		for b := range q {
			if err := s.ConnectRegister(q[b], d[b]); err != nil {
				panic(err)
			}
		}
	}

	// counts[i] starts as the 1-bit valid; after the pipeline it is the
	// inclusive prefix count.
	counts := make([]logic.Bus, n)
	waveV := make([]logic.Signal, n)
	for i := 0; i < n; i++ {
		counts[i] = c.Truncate(logic.Bus{r.inValid[i]}, w)
		waveV[i] = r.inValid[i]
	}
	for lvl := 0; lvl < q; lvl++ {
		d := 1 << uint(lvl)
		nextCounts := make([]logic.Bus, n)
		for i := 0; i < n; i++ {
			if i&d != 0 {
				j := (i &^ (d - 1)) - 1
				nextCounts[i] = c.Truncate(c.Add(counts[j], counts[i]), w)
			} else {
				nextCounts[i] = counts[i]
			}
		}
		// Register boundary.
		for i := 0; i < n; i++ {
			qb := mkRegBus(fmt.Sprintf("rank.%d.%d", lvl, i), w)
			connectBus(qb, nextCounts[i])
			counts[i] = qb
			qv := s.Register(fmt.Sprintf("rankv.%d.%d", lvl, i), false)
			if err := s.ConnectRegister(qv, waveV[i]); err != nil {
				return nil, err
			}
			waveV[i] = qv
		}
	}
	// Destination of input i = exclusive prefix = inclusive(i−1); for
	// i = 0 it is zero. Realized by pairing count[i−1] with wave i.
	dests := make([]logic.Bus, n)
	for i := 0; i < n; i++ {
		if i == 0 {
			dests[i] = c.ConstBus(0, w)
		} else {
			dests[i] = counts[i-1]
		}
	}

	// --- Stage B: butterfly with latched crossbars ----------------------
	// The wave (waveV, dests) traverses one level per cycle, latching
	// cross settings; payload (injected q cycles after the valid bits,
	// i.e. right behind the wave) follows the latched settings.
	payload := make([]logic.Signal, n)
	for i := 0; i < n; i++ {
		payload[i] = r.inData[i]
	}

	wv := waveV
	wd := dests
	for lvl := 0; lvl < q; lvl++ {
		mask := 1 << uint(lvl)
		nwv := make([]logic.Signal, n)
		nwd := make([]logic.Bus, n)
		np := make([]logic.Signal, n)
		for lo := 0; lo < n; lo++ {
			if lo&mask != 0 {
				continue
			}
			hi := lo | mask
			// Wave routing and cross latching.
			crossNow := c.Or(c.And(wv[lo], wd[lo][lvl]), c.And(wv[hi], c.Not(wd[hi][lvl])))
			latchEn := c.Or(wv[lo], wv[hi])
			crossReg := s.Register(fmt.Sprintf("cross.%d.%d", lvl, lo), false)
			if err := s.ConnectRegister(crossReg, c.Mux(latchEn, crossNow, crossReg)); err != nil {
				return nil, err
			}

			routeSig := func(a, b logic.Signal, cross logic.Signal) (outLo, outHi logic.Signal) {
				return c.Mux(cross, b, a), c.Mux(cross, a, b)
			}
			vLo, vHi := routeSig(wv[lo], wv[hi], crossNow)
			dLo := make(logic.Bus, w)
			dHi := make(logic.Bus, w)
			for b := 0; b < w; b++ {
				dLo[b], dHi[b] = routeSig(wd[lo][b], wd[hi][b], crossNow)
			}
			// Payload routed by the LATCHED setting.
			pLo, pHi := routeSig(payload[lo], payload[hi], crossReg)

			// Register boundary for wave and payload.
			regV := func(name string, d logic.Signal) logic.Signal {
				qr := s.Register(name, false)
				if err := s.ConnectRegister(qr, d); err != nil {
					panic(err)
				}
				return qr
			}
			nwv[lo] = regV(fmt.Sprintf("wv.%d.%d", lvl, lo), vLo)
			nwv[hi] = regV(fmt.Sprintf("wv.%d.%d", lvl, hi), vHi)
			nwd[lo] = mkRegBus(fmt.Sprintf("wd.%d.%d", lvl, lo), w)
			connectBus(nwd[lo], dLo)
			nwd[hi] = mkRegBus(fmt.Sprintf("wd.%d.%d", lvl, hi), w)
			connectBus(nwd[hi], dHi)
			np[lo] = regV(fmt.Sprintf("pp.%d.%d", lvl, lo), pLo)
			np[hi] = regV(fmt.Sprintf("pp.%d.%d", lvl, hi), pHi)
		}
		wv, wd, payload = nwv, nwd, np
	}

	// Output valid flags latch as the wave arrives at the outputs
	// (sticky until reset).
	for o := 0; o < n; o++ {
		sticky := s.Register(fmt.Sprintf("ov.%d", o), false)
		if err := s.ConnectRegister(sticky, c.Or(sticky, wv[o])); err != nil {
			return nil, err
		}
		s.MarkOutput(fmt.Sprintf("outValid.%d", o), sticky)
		s.MarkOutput(fmt.Sprintf("outData.%d", o), payload[o])
		r.outValid = append(r.outValid, 2*o)
		r.outData = append(r.outData, 2*o+1)
	}
	return r, nil
}

// SetupLatency returns the cycles between presenting the valid bits and
// the first cycle payload may be injected: the rank pipeline (q cycles)
// plus one cycle for the wave to latch the first butterfly level's
// crossbars; payload then trails the wave level by level.
func (r *RegNetlist) SetupLatency() int { return r.q + 1 }

// StreamLatency returns the cycles from a payload bit's injection to
// its appearance at the output registers: the q butterfly levels.
func (r *RegNetlist) StreamLatency() int { return r.q }

// ClockPeriodDepth returns the critical combinational depth of one
// clock cycle.
func (r *RegNetlist) ClockPeriodDepth() (int, error) { return r.seq.ClockPeriodDepth() }

// Registers returns the total register count (the area price of
// pipelining).
func (r *RegNetlist) Registers() int { return r.seq.Registers() }

// Run performs a complete operation: setup with the valid bits, then
// stream the given equal-length payloads (keyed by input). It returns
// the delivered stream per output and the total cycle count.
func (r *RegNetlist) Run(valid *bitvec.Vector, payloads map[int][]bool) (map[int][]bool, int, error) {
	if valid.Len() != r.n {
		return nil, 0, fmt.Errorf("seqhyper: %d valid bits for %d inputs", valid.Len(), r.n)
	}
	length := 0
	for i, p := range payloads {
		if i < 0 || i >= r.n || !valid.Get(i) {
			return nil, 0, fmt.Errorf("seqhyper: payload on invalid input %d", i)
		}
		if length == 0 {
			length = len(p)
		} else if len(p) != length {
			return nil, 0, fmt.Errorf("seqhyper: payloads must share one length")
		}
	}
	step := func(validBits *bitvec.Vector, data map[int]bool) ([]bool, error) {
		in := make([]bool, 2*r.n)
		if validBits != nil {
			for i := 0; i < r.n; i++ {
				in[i] = validBits.Get(i)
			}
		}
		for i, b := range data {
			in[r.n+i] = b
		}
		return r.seq.Step(in)
	}

	cycles := 0
	// Cycle 0: inject the valid wave (and nothing else).
	if _, err := step(valid, nil); err != nil {
		return nil, 0, err
	}
	cycles++
	// Cycles 1..q−1: the wave rides the rank pipeline.
	for cyc := 1; cyc < r.SetupLatency(); cyc++ {
		if _, err := step(nil, nil); err != nil {
			return nil, 0, err
		}
		cycles++
	}
	// Payload injection: bit c at cycle q+c, collected at the outputs
	// when it emerges 2q cycles later.
	streams := map[int][]bool{}
	total := length + r.StreamLatency()
	firstOut := r.StreamLatency()
	for cyc := 0; cyc < total; cyc++ {
		data := map[int]bool{}
		if cyc < length {
			for i, p := range payloads {
				data[i] = p[cyc]
			}
		}
		out, err := step(nil, data)
		if err != nil {
			return nil, 0, err
		}
		cycles++
		if cyc >= firstOut {
			for o := 0; o < r.n; o++ {
				if out[r.outValid[o]] {
					streams[o] = append(streams[o], out[r.outData[o]])
				}
			}
		}
	}
	return streams, cycles, nil
}

// Reset clears all pipeline state for a fresh Run.
func (r *RegNetlist) Reset() { r.seq.Reset() }
