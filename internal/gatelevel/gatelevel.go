// Package gatelevel composes whole multichip switches as single flat
// gate-level netlists: every hyperconcentrator chip is an embedded
// instance of the internal/hyper netlist, the interstage permutations
// are pure wiring (signal re-indexing), and the Revsort stage-2 barrel
// shifters are the hardwired, constant-folded instances of
// internal/shifter.
//
// This is the most literal executable form of the paper's designs: one
// combinational circuit per switch whose critical-path depth can be
// measured and whose behaviour is verified bit-for-bit against the
// functional models in internal/core.
package gatelevel

import (
	"fmt"

	"concentrators/internal/bitvec"
	"concentrators/internal/hyper"
	"concentrators/internal/logic"
	"concentrators/internal/mesh"
	"concentrators/internal/shifter"
)

// Switch is a flat gate-level concentrator switch netlist. Inputs are
// ordered valid.0..valid.{n−1} then data.0..data.{n−1}; outputs are
// interleaved (valid.o, data.o) for o = 0..m−1.
type Switch struct {
	Net  *logic.Net
	N, M int
	// Kind names the construction ("revsort" or "columnsort").
	Kind string
}

// wirePair carries one matrix position's valid and data signals.
type wirePair struct {
	valid, data logic.Signal
}

// chipNetCache avoids re-emitting the per-size hyperconcentrator
// netlist for every chip instance.
type chipNetCache map[int]*logic.Net

func (c chipNetCache) get(w int) (*logic.Net, error) {
	if n, ok := c[w]; ok {
		return n, nil
	}
	nl, err := hyper.BuildNetlist(w)
	if err != nil {
		return nil, err
	}
	// Optimizing the chip once here shrinks every embedded instance.
	opt := nl.Net.Optimize()
	c[w] = opt
	return opt, nil
}

// embedChip instantiates one w-wide hyperconcentrator chip over the
// given wire pairs and returns the chip's output pairs.
func embedChip(net *logic.Net, cache chipNetCache, wires []wirePair) ([]wirePair, error) {
	w := len(wires)
	sub, err := cache.get(w)
	if err != nil {
		return nil, err
	}
	in := make([]logic.Signal, 0, 2*w)
	for _, p := range wires {
		in = append(in, p.valid)
	}
	for _, p := range wires {
		in = append(in, p.data)
	}
	out, err := net.Embed(sub, in)
	if err != nil {
		return nil, err
	}
	pairs := make([]wirePair, w)
	for i := 0; i < w; i++ {
		pairs[i] = wirePair{valid: out[2*i], data: out[2*i+1]}
	}
	return pairs, nil
}

// BuildRevsort emits the complete §4 switch: three stages of √n-by-√n
// hyperconcentrator chips with transpose wiring and hardwired rev(i)
// barrel shifters.
func BuildRevsort(n, m int) (*Switch, error) {
	side, q, err := squareSide(n)
	if err != nil {
		return nil, err
	}
	if m < 1 || m > n {
		return nil, fmt.Errorf("gatelevel: m = %d out of range for n = %d", m, n)
	}
	net := logic.New()
	cells := make([]wirePair, n) // row-major matrix of wires
	for x := 0; x < n; x++ {
		cells[x].valid = net.Input(fmt.Sprintf("valid.%d", x))
	}
	for x := 0; x < n; x++ {
		cells[x].data = net.Input(fmt.Sprintf("data.%d", x))
	}
	cache := chipNetCache{}

	at := func(i, j int) *wirePair { return &cells[i*side+j] }

	// Stage 1: one chip per column.
	for j := 0; j < side; j++ {
		col := make([]wirePair, side)
		for i := 0; i < side; i++ {
			col[i] = *at(i, j)
		}
		out, err := embedChip(net, cache, col)
		if err != nil {
			return nil, err
		}
		for i := 0; i < side; i++ {
			*at(i, j) = out[i]
		}
	}
	// Stage 2: one chip per row, then the hardwired rev(i) shifter.
	for i := 0; i < side; i++ {
		row := make([]wirePair, side)
		for j := 0; j < side; j++ {
			row[j] = *at(i, j)
		}
		out, err := embedChip(net, cache, row)
		if err != nil {
			return nil, err
		}
		out, err = embedShifter(net, out, mesh.Rev(i, q))
		if err != nil {
			return nil, err
		}
		for j := 0; j < side; j++ {
			*at(i, j) = out[j]
		}
	}
	// Stage 3: one chip per column.
	for j := 0; j < side; j++ {
		col := make([]wirePair, side)
		for i := 0; i < side; i++ {
			col[i] = *at(i, j)
		}
		out, err := embedChip(net, cache, col)
		if err != nil {
			return nil, err
		}
		for i := 0; i < side; i++ {
			*at(i, j) = out[i]
		}
	}
	markOutputs(net, cells, m)
	return &Switch{Net: net, N: n, M: m, Kind: "revsort"}, nil
}

// embedShifter rotates the wire pairs right by amount using two
// hardwired barrel shifter instances (one for the valid lines, one for
// the data lines), exactly as the stage-2 boards route both wire sets
// through the shifter chip.
func embedShifter(net *logic.Net, wires []wirePair, amount int) ([]wirePair, error) {
	w := len(wires)
	hw, err := shifter.BuildHardwired(w, amount)
	if err != nil {
		return nil, err
	}
	valids := make([]logic.Signal, w)
	datas := make([]logic.Signal, w)
	for i, p := range wires {
		valids[i] = p.valid
		datas[i] = p.data
	}
	vOut, err := net.Embed(hw, valids)
	if err != nil {
		return nil, err
	}
	dOut, err := net.Embed(hw, datas)
	if err != nil {
		return nil, err
	}
	out := make([]wirePair, w)
	for i := range out {
		out[i] = wirePair{valid: vOut[i], data: dOut[i]}
	}
	return out, nil
}

// BuildColumnsort emits the complete §5 switch: two stages of r-by-r
// hyperconcentrator chips with the column-major → row-major reshape
// wiring between them.
func BuildColumnsort(r, s, m int) (*Switch, error) {
	if r < 1 || s < 1 || s > r || r%s != 0 {
		return nil, fmt.Errorf("gatelevel: invalid Columnsort shape %d×%d", r, s)
	}
	n := r * s
	if m < 1 || m > n {
		return nil, fmt.Errorf("gatelevel: m = %d out of range for n = %d", m, n)
	}
	net := logic.New()
	cells := make([]wirePair, n)
	for x := 0; x < n; x++ {
		cells[x].valid = net.Input(fmt.Sprintf("valid.%d", x))
	}
	for x := 0; x < n; x++ {
		cells[x].data = net.Input(fmt.Sprintf("data.%d", x))
	}
	cache := chipNetCache{}

	sortColumns := func() error {
		for j := 0; j < s; j++ {
			col := make([]wirePair, r)
			for i := 0; i < r; i++ {
				col[i] = cells[i*s+j]
			}
			out, err := embedChip(net, cache, col)
			if err != nil {
				return err
			}
			for i := 0; i < r; i++ {
				cells[i*s+j] = out[i]
			}
		}
		return nil
	}

	if err := sortColumns(); err != nil {
		return nil, err
	}
	// Reshape wiring: column-major index x moves to row-major index x.
	next := make([]wirePair, n)
	for j := 0; j < s; j++ {
		for i := 0; i < r; i++ {
			x := r*j + i
			next[x] = cells[i*s+j]
		}
	}
	cells = next
	if err := sortColumns(); err != nil {
		return nil, err
	}
	markOutputs(net, cells, m)
	return &Switch{Net: net, N: n, M: m, Kind: "columnsort"}, nil
}

func markOutputs(net *logic.Net, cells []wirePair, m int) {
	for o := 0; o < m; o++ {
		net.MarkOutput(fmt.Sprintf("valid.%d", o), cells[o].valid)
		net.MarkOutput(fmt.Sprintf("data.%d", o), cells[o].data)
	}
}

func squareSide(n int) (side, q int, err error) {
	side = 0
	for side*side < n {
		side++
	}
	if side*side != n {
		return 0, 0, fmt.Errorf("gatelevel: n = %d is not a perfect square", n)
	}
	q = 0
	for (1 << uint(q)) < side {
		q++
	}
	if 1<<uint(q) != side {
		return 0, 0, fmt.Errorf("gatelevel: side %d is not a power of two", side)
	}
	return side, q, nil
}

// Eval runs one combinational cycle: the (held) valid bits and the
// current payload bits in, the per-output valid and payload bits out.
func (s *Switch) Eval(valid *bitvec.Vector, payload []bool) (outValid *bitvec.Vector, outPayload []bool, err error) {
	if valid.Len() != s.N || len(payload) != s.N {
		return nil, nil, fmt.Errorf("gatelevel: eval arity mismatch (valid %d, payload %d, want %d)",
			valid.Len(), len(payload), s.N)
	}
	in := make([]bool, 2*s.N)
	for i := 0; i < s.N; i++ {
		in[i] = valid.Get(i)
		in[s.N+i] = payload[i]
	}
	raw := s.Net.Eval(in)
	outValid = bitvec.New(s.M)
	outPayload = make([]bool, s.M)
	for o := 0; o < s.M; o++ {
		outValid.Set(o, raw[2*o])
		outPayload[o] = raw[2*o+1]
	}
	return outValid, outPayload, nil
}

// Stream performs a full bit-serial run: setup with the valid bits,
// then len(payloads[i]) cycles of payload streaming. It returns, for
// each output wire, the delivered bit stream (nil for outputs whose
// valid bit is 0). All payloads must share one length.
func (s *Switch) Stream(valid *bitvec.Vector, payloads map[int][]bool) (map[int][]bool, error) {
	if valid.Len() != s.N {
		return nil, fmt.Errorf("gatelevel: %d valid bits for %d inputs", valid.Len(), s.N)
	}
	length := -1
	for in, p := range payloads {
		if in < 0 || in >= s.N || !valid.Get(in) {
			return nil, fmt.Errorf("gatelevel: payload on invalid or out-of-range input %d", in)
		}
		if length == -1 {
			length = len(p)
		} else if len(p) != length {
			return nil, fmt.Errorf("gatelevel: payloads must share one length")
		}
	}
	if length == -1 {
		length = 0
	}
	streams := map[int][]bool{}
	for c := 0; c < length; c++ {
		cycle := make([]bool, s.N)
		for in, p := range payloads {
			cycle[in] = p[c]
		}
		ov, op, err := s.Eval(valid, cycle)
		if err != nil {
			return nil, err
		}
		for o := 0; o < s.M; o++ {
			if ov.Get(o) {
				streams[o] = append(streams[o], op[o])
			}
		}
	}
	return streams, nil
}
