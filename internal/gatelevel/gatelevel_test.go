package gatelevel

import (
	"math/rand"
	"testing"

	"concentrators/internal/bitvec"
	"concentrators/internal/core"
)

func patternValid(pat, n int) *bitvec.Vector {
	v := bitvec.New(n)
	for i := 0; i < n; i++ {
		v.Set(i, pat&(1<<uint(i)) != 0)
	}
	return v
}

// routeOf extracts input→output mapping from a gate-level switch by
// streaming a unique id per message and decoding it at the outputs.
func routeOf(t *testing.T, sw *Switch, valid *bitvec.Vector) []int {
	t.Helper()
	idBits := 1
	for (1 << uint(idBits)) < sw.N {
		idBits++
	}
	payloads := map[int][]bool{}
	for i := 0; i < sw.N; i++ {
		if valid.Get(i) {
			bits := make([]bool, idBits)
			for b := 0; b < idBits; b++ {
				bits[b] = i&(1<<uint(b)) != 0
			}
			payloads[i] = bits
		}
	}
	streams, err := sw.Stream(valid, payloads)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]int, sw.N)
	for i := range out {
		out[i] = -1
	}
	for o, bits := range streams {
		id := 0
		for b, bit := range bits {
			if bit {
				id |= 1 << uint(b)
			}
		}
		if id < 0 || id >= sw.N || !valid.Get(id) {
			t.Fatalf("output %d decoded bogus message id %d", o, id)
		}
		if out[id] != -1 {
			t.Fatalf("message %d delivered twice", id)
		}
		out[id] = o
	}
	return out
}

func sameRoute(t *testing.T, tag string, got, want []int) {
	t.Helper()
	for i := range want {
		g := got[i]
		w := want[i]
		if g != w {
			t.Fatalf("%s: input %d routed to %d, functional model says %d", tag, i, g, w)
		}
	}
}

// The flat Revsort netlist must agree, message for message, with the
// functional core switch — exhaustively at n=16.
func TestRevsortNetlistMatchesFunctionalExhaustive(t *testing.T) {
	n, m := 16, 12
	gsw, err := BuildRevsort(n, m)
	if err != nil {
		t.Fatal(err)
	}
	fsw, err := core.NewRevsortSwitch(n, m)
	if err != nil {
		t.Fatal(err)
	}
	for pat := 0; pat < 1<<uint(n); pat++ {
		v := patternValid(pat, n)
		want, err := fsw.Route(v)
		if err != nil {
			t.Fatal(err)
		}
		got := routeOf(t, gsw, v)
		sameRoute(t, "revsort", got, want)
	}
}

func TestRevsortNetlistMatchesFunctionalRandom64(t *testing.T) {
	n, m := 64, 28
	gsw, err := BuildRevsort(n, m)
	if err != nil {
		t.Fatal(err)
	}
	fsw, err := core.NewRevsortSwitch(n, m)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 25; trial++ {
		v := bitvec.New(n)
		for i := 0; i < n; i++ {
			v.Set(i, rng.Intn(2) == 1)
		}
		want, err := fsw.Route(v)
		if err != nil {
			t.Fatal(err)
		}
		got := routeOf(t, gsw, v)
		sameRoute(t, "revsort64", got, want)
	}
}

func TestColumnsortNetlistMatchesFunctionalExhaustive(t *testing.T) {
	r, s, m := 4, 2, 6
	n := r * s
	gsw, err := BuildColumnsort(r, s, m)
	if err != nil {
		t.Fatal(err)
	}
	fsw, err := core.NewColumnsortSwitch(r, s, m)
	if err != nil {
		t.Fatal(err)
	}
	for pat := 0; pat < 1<<uint(n); pat++ {
		v := patternValid(pat, n)
		want, err := fsw.Route(v)
		if err != nil {
			t.Fatal(err)
		}
		got := routeOf(t, gsw, v)
		sameRoute(t, "columnsort", got, want)
	}
}

func TestColumnsortNetlistMatchesFunctionalRandom32(t *testing.T) {
	r, s, m := 8, 4, 18 // the Figure 6 switch
	n := r * s
	gsw, err := BuildColumnsort(r, s, m)
	if err != nil {
		t.Fatal(err)
	}
	fsw, err := core.NewColumnsortSwitch(r, s, m)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		v := bitvec.New(n)
		for i := 0; i < n; i++ {
			v.Set(i, rng.Intn(2) == 1)
		}
		want, err := fsw.Route(v)
		if err != nil {
			t.Fatal(err)
		}
		got := routeOf(t, gsw, v)
		sameRoute(t, "columnsort32", got, want)
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := BuildRevsort(15, 4); err == nil {
		t.Error("accepted non-square n")
	}
	if _, err := BuildRevsort(36, 4); err == nil {
		t.Error("accepted non-power-of-two side")
	}
	if _, err := BuildRevsort(16, 0); err == nil {
		t.Error("accepted m = 0")
	}
	if _, err := BuildColumnsort(4, 8, 2); err == nil {
		t.Error("accepted s > r")
	}
	if _, err := BuildColumnsort(9, 4, 2); err == nil {
		t.Error("accepted s ∤ r")
	}
}

func TestEvalValidation(t *testing.T) {
	sw, err := BuildColumnsort(4, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sw.Eval(bitvec.New(7), make([]bool, 8)); err == nil {
		t.Error("accepted wrong valid width")
	}
	if _, err := sw.Stream(bitvec.New(8), map[int][]bool{3: {true}}); err == nil {
		t.Error("accepted payload on invalid input")
	}
	v := bitvec.New(8)
	v.Set(0, true)
	v.Set(1, true)
	if _, err := sw.Stream(v, map[int][]bool{0: {true}, 1: {true, false}}); err == nil {
		t.Error("accepted ragged payload lengths")
	}
}

// Depth accounting: the flat netlist's critical path grows with the
// number of stages, and the hardwired shifters add nothing (they are
// wiring after constant folding).
func TestNetlistDepthComposition(t *testing.T) {
	rev, err := BuildRevsort(16, 16)
	if err != nil {
		t.Fatal(err)
	}
	col, err := BuildColumnsort(4, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	dRev, dCol := rev.Net.Depth(), col.Net.Depth()
	// Revsort has three chip stages, Columnsort two, with 4-wide chips
	// in both: 3:2 ratio within slack.
	if !(dCol < dRev) {
		t.Errorf("columnsort depth %d should be below revsort depth %d", dCol, dRev)
	}
	if dRev > 3*dCol {
		t.Errorf("revsort depth %d is out of proportion to columnsort depth %d", dRev, dCol)
	}
}

// The optimizer should leave the composed switch functionally intact.
func TestOptimizedSwitchEquivalent(t *testing.T) {
	sw, err := BuildColumnsort(4, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	opt := sw.Net.Optimize()
	if opt.NumInputs() != sw.Net.NumInputs() || opt.NumOutputs() != sw.Net.NumOutputs() {
		t.Fatal("optimizer changed arity")
	}
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 200; trial++ {
		in := make([]bool, sw.Net.NumInputs())
		for i := range in {
			in[i] = rng.Intn(2) == 1
		}
		a := sw.Net.Eval(in)
		b := opt.Eval(in)
		for i := range a {
			if a[i] != b[i] {
				t.Fatal("optimized switch differs")
			}
		}
	}
	if opt.GateCount() > sw.Net.GateCount() {
		t.Error("optimizer increased gate count")
	}
}
