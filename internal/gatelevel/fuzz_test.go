package gatelevel

import (
	"testing"

	"concentrators/internal/bitvec"
	"concentrators/internal/core"
)

// Fuzz the flat netlist against the functional switch: any byte string
// becomes a valid pattern + payload; the netlist's outputs must carry
// exactly the functional route's messages.
func FuzzColumnsortNetlist(f *testing.F) {
	f.Add([]byte{0x00})
	f.Add([]byte{0xFF, 0x0F})
	f.Add([]byte{0xA5, 0x5A, 0x33})
	gsw, err := BuildColumnsort(4, 2, 8)
	if err != nil {
		f.Fatal(err)
	}
	fsw, err := core.NewColumnsortSwitch(4, 2, 8)
	if err != nil {
		f.Fatal(err)
	}
	n := 8
	f.Fuzz(func(t *testing.T, raw []byte) {
		valid := bitvec.New(n)
		payload := make([]bool, n)
		for i := 0; i < n; i++ {
			if len(raw) > 0 {
				b := raw[i%len(raw)]
				valid.Set(i, b&(1<<uint(i%8)) != 0)
				payload[i] = b&(1<<uint((i+3)%8)) != 0
			}
		}
		ov, op, err := gsw.Eval(valid, payload)
		if err != nil {
			t.Fatal(err)
		}
		route, err := fsw.Route(valid)
		if err != nil {
			t.Fatal(err)
		}
		// Valid outputs must be exactly the functional route's image.
		want := bitvec.New(8)
		for _, o := range route {
			if o >= 0 {
				want.Set(o, true)
			}
		}
		for o := 0; o < 8; o++ {
			if ov.Get(o) != want.Get(o) {
				t.Fatalf("valid output %d: netlist %v vs functional %v (pattern %s)",
					o, ov.Get(o), want.Get(o), valid)
			}
		}
		// Each routed message's payload bit must arrive intact.
		for i, o := range route {
			if o >= 0 && op[o] != payload[i] {
				t.Fatalf("payload of input %d corrupted (pattern %s)", i, valid)
			}
		}
	})
}
