package banyan

import (
	"math/rand"
	"testing"

	"concentrators/internal/bitvec"
	"concentrators/internal/logic"
	"concentrators/internal/prefix"
)

func TestNewValidation(t *testing.T) {
	for _, n := range []int{0, 1, 3, 6, 100} {
		if _, err := New(n, ButterflyLSB); err == nil {
			t.Errorf("New(%d) accepted a non-power-of-two", n)
		}
	}
	nw, err := New(16, ButterflyLSB)
	if err != nil {
		t.Fatal(err)
	}
	if nw.Size() != 16 || nw.Levels() != 4 || nw.SwitchCount() != 32 {
		t.Errorf("size/levels/switches = %d/%d/%d", nw.Size(), nw.Levels(), nw.SwitchCount())
	}
}

func TestRouteDestsValidation(t *testing.T) {
	nw, _ := New(4, ButterflyLSB)
	if _, err := nw.RouteDests([]int{0, 1}); err == nil {
		t.Error("accepted wrong-length dest slice")
	}
	if _, err := nw.RouteDests([]int{0, 0, -1, -1}); err == nil {
		t.Error("accepted duplicate destinations")
	}
	if _, err := nw.RouteDests([]int{4, -1, -1, -1}); err == nil {
		t.Error("accepted out-of-range destination")
	}
}

// The central structural fact: concentration on the LSB-first butterfly
// is conflict-free and delivers the j-th valid input to output j−1.
// Exhaustive over all valid-bit patterns for n = 2, 4, 8, 16.
func TestConcentrationConflictFreeExhaustive(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16} {
		nw, err := New(n, ButterflyLSB)
		if err != nil {
			t.Fatal(err)
		}
		for pat := 0; pat < 1<<uint(n); pat++ {
			v := bitvec.New(n)
			for i := 0; i < n; i++ {
				v.Set(i, pat&(1<<uint(i)) != 0)
			}
			rt, err := nw.RouteConcentration(v)
			if err != nil {
				t.Fatal(err)
			}
			if rt.Conflicts != 0 {
				t.Fatalf("n=%d pattern %0*b: %d conflicts", n, n, pat, rt.Conflicts)
			}
			rank := 0
			for i := 0; i < n; i++ {
				if v.Get(i) {
					if rt.Out[i] != rank {
						t.Fatalf("n=%d pattern %0*b: input %d routed to %d, want %d",
							n, n, pat, i, rt.Out[i], rank)
					}
					rank++
				} else if rt.Out[i] != -1 {
					t.Fatalf("n=%d pattern %0*b: idle input %d routed to %d", n, n, pat, i, rt.Out[i])
				}
			}
		}
	}
}

func TestConcentrationRandomLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, n := range []int{64, 256, 1024} {
		nw, _ := New(n, ButterflyLSB)
		for trial := 0; trial < 20; trial++ {
			v := bitvec.New(n)
			for i := 0; i < n; i++ {
				v.Set(i, rng.Intn(2) == 1)
			}
			rt, err := nw.RouteConcentration(v)
			if err != nil {
				t.Fatal(err)
			}
			if rt.Conflicts != 0 {
				t.Fatalf("n=%d: %d conflicts", n, rt.Conflicts)
			}
			rank := 0
			for i := 0; i < n; i++ {
				if v.Get(i) {
					if rt.Out[i] != rank {
						t.Fatalf("n=%d: input %d -> %d, want %d", n, i, rt.Out[i], rank)
					}
					rank++
				}
			}
		}
	}
}

// Ablation: the MSB-first butterfly does conflict on some concentration
// patterns — this is why the orientation matters.
func TestMSBOrientationConflicts(t *testing.T) {
	n := 8
	nw, _ := New(n, ButterflyMSB)
	sawConflict := false
	for pat := 0; pat < 1<<uint(n); pat++ {
		v := bitvec.New(n)
		for i := 0; i < n; i++ {
			v.Set(i, pat&(1<<uint(i)) != 0)
		}
		rt, err := nw.RouteConcentration(v)
		if err != nil {
			t.Fatal(err)
		}
		if rt.Conflicts > 0 {
			sawConflict = true
			break
		}
	}
	if !sawConflict {
		t.Error("MSB-first butterfly never conflicted on concentration; ablation premise wrong")
	}
}

// A single packet routes to its destination in every topology (banyan
// networks are full-access).
func TestSinglePacketFullAccess(t *testing.T) {
	n := 16
	for _, topo := range []Topology{ButterflyLSB, ButterflyMSB, Omega} {
		nw, _ := New(n, topo)
		for src := 0; src < n; src++ {
			for dst := 0; dst < n; dst++ {
				dest := make([]int, n)
				for i := range dest {
					dest[i] = -1
				}
				dest[src] = dst
				rt, err := nw.RouteDests(dest)
				if err != nil {
					t.Fatal(err)
				}
				if rt.Conflicts != 0 || rt.Out[src] != dst {
					t.Fatalf("%v: %d->%d routed to %d with %d conflicts",
						topo, src, dst, rt.Out[src], rt.Conflicts)
				}
			}
		}
	}
}

// Identity permutation is conflict-free on all topologies.
func TestIdentityPermutation(t *testing.T) {
	n := 32
	for _, topo := range []Topology{ButterflyLSB, ButterflyMSB, Omega} {
		nw, _ := New(n, topo)
		dest := make([]int, n)
		for i := range dest {
			dest[i] = i
		}
		rt, err := nw.RouteDests(dest)
		if err != nil {
			t.Fatal(err)
		}
		if rt.Conflicts != 0 {
			t.Errorf("%v: identity permutation had %d conflicts", topo, rt.Conflicts)
		}
		for i := range dest {
			if rt.Out[i] != i {
				t.Errorf("%v: input %d -> %d", topo, i, rt.Out[i])
			}
		}
	}
}

func TestTopologyString(t *testing.T) {
	if ButterflyLSB.String() != "butterfly-lsb" || Omega.String() != "omega" {
		t.Error("topology names wrong")
	}
}

// Gate-level datapath agrees with the functional route, exhaustively
// for n=8 over all valid patterns with random payloads.
func TestEmitSelfRoutingMatchesFunctional(t *testing.T) {
	n := 8
	nw, _ := New(n, ButterflyLSB)
	net := logic.New()
	valid := net.Inputs("v", n)
	payload := net.Inputs("p", n)
	// Destination = rank−1, computed by the prefix rank circuit; the
	// "−1" is free because rank−1 for a valid input equals the count of
	// earlier valid inputs, i.e. the exclusive prefix count.
	ranks := prefix.RankCircuit(net, valid)
	dest := make([]logic.Bus, n)
	w := prefix.CountWidth(n)
	zero := net.ConstBus(0, w)
	for i := range dest {
		if i == 0 {
			dest[i] = zero
		} else {
			dest[i] = ranks[i-1]
		}
	}
	vo, po, err := nw.EmitSelfRouting(net, valid, dest, payload)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		net.MarkOutput("vo", vo[i])
		net.MarkOutput("po", po[i])
	}

	rng := rand.New(rand.NewSource(22))
	for pat := 0; pat < 1<<uint(n); pat++ {
		v := bitvec.New(n)
		in := make([]bool, 2*n)
		pay := make([]bool, n)
		for i := 0; i < n; i++ {
			b := pat&(1<<uint(i)) != 0
			v.Set(i, b)
			in[i] = b
			pay[i] = rng.Intn(2) == 1
			in[n+i] = pay[i]
		}
		out := net.Eval(in)
		rt, err := nw.RouteConcentration(v)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			gotValid := out[2*i]
			gotPay := out[2*i+1]
			wantValid := i < v.Count()
			if gotValid != wantValid {
				t.Fatalf("pattern %08b output %d: valid = %v, want %v", pat, i, gotValid, wantValid)
			}
			if wantValid {
				// Which input was routed here?
				src := -1
				for j := 0; j < n; j++ {
					if rt.Out[j] == i {
						src = j
					}
				}
				if src == -1 {
					t.Fatalf("pattern %08b: no source for output %d", pat, i)
				}
				if gotPay != pay[src] {
					t.Fatalf("pattern %08b output %d: payload = %v, want %v (from input %d)",
						pat, i, gotPay, pay[src], src)
				}
			}
		}
	}
}

func TestEmitValidation(t *testing.T) {
	nw, _ := New(8, ButterflyLSB)
	net := logic.New()
	v := net.Inputs("v", 8)
	p := net.Inputs("p", 8)
	short := make([]logic.Bus, 8)
	for i := range short {
		short[i] = net.ConstBus(0, 2) // too narrow: need 3 bits
	}
	if _, _, err := nw.EmitSelfRouting(net, v, short, p); err == nil {
		t.Error("accepted too-narrow destination buses")
	}
	if _, _, err := nw.EmitSelfRouting(net, v[:4], short, p); err == nil {
		t.Error("accepted arity mismatch")
	}
	om, _ := New(8, Omega)
	ok := make([]logic.Bus, 8)
	for i := range ok {
		ok[i] = net.ConstBus(0, 3)
	}
	if _, _, err := om.EmitSelfRouting(net, v, ok, p); err == nil {
		t.Error("omega emission should be rejected")
	}
}

// Depth of the emitted datapath is linear in lg n (a few gate delays
// per level).
func TestEmitDepthLinearInLevels(t *testing.T) {
	depthFor := func(n int) int {
		nw, _ := New(n, ButterflyLSB)
		net := logic.New()
		valid := net.Inputs("v", n)
		payload := net.Inputs("p", n)
		w := prefix.CountWidth(n)
		dest := make([]logic.Bus, n)
		for i := range dest {
			dest[i] = net.InputBus("d", w)
		}
		vo, po, err := nw.EmitSelfRouting(net, valid, dest, payload)
		if err != nil {
			t.Fatal(err)
		}
		for i := range vo {
			net.MarkOutput("vo", vo[i])
			net.MarkOutput("po", po[i])
		}
		return net.Depth()
	}
	d8, d64 := depthFor(8), depthFor(64)
	// 3 levels vs 6 levels: depth should double, within rounding.
	if d64 < d8 || d64 > 3*d8 {
		t.Errorf("datapath depth: d(8)=%d d(64)=%d, expected roughly 2x growth", d8, d64)
	}
}
