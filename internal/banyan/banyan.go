// Package banyan implements butterfly-style multistage interconnection
// networks and the self-routing concentration pattern they support.
//
// The single-chip hyperconcentrator of internal/hyper is built from a
// parallel-prefix rank circuit followed by a banyan datapath, following
// the alternative construction mentioned in §1 of the paper ("a
// parallel prefix circuit and a butterfly network"). The key structural
// fact, verified exhaustively in the tests, is that a butterfly routed
// least-significant-destination-bit first realizes any concentration
// (order-preserving routing of the valid inputs onto the output prefix
// 0..k−1) with no switch conflicts.
package banyan

import (
	"fmt"

	"concentrators/internal/bitvec"
	"concentrators/internal/logic"
)

// Topology selects the wiring pattern and routing-bit order of a
// network.
type Topology int

const (
	// ButterflyLSB pairs nodes i and i^2^ℓ at level ℓ and routes on
	// destination bit ℓ. This is the orientation that concentrates
	// without conflicts.
	ButterflyLSB Topology = iota
	// ButterflyMSB pairs nodes i and i^2^(q−1−ℓ) at level ℓ and routes
	// on destination bit q−1−ℓ. Included as an ablation: it is NOT
	// conflict-free for concentration.
	ButterflyMSB
	// Omega applies a perfect shuffle before each exchange level and
	// routes on destination bits most-significant first. Also an
	// ablation topology.
	Omega
)

// String names the topology.
func (t Topology) String() string {
	switch t {
	case ButterflyLSB:
		return "butterfly-lsb"
	case ButterflyMSB:
		return "butterfly-msb"
	case Omega:
		return "omega"
	default:
		return fmt.Sprintf("Topology(%d)", int(t))
	}
}

// Network is an n-input, n-output multistage network with lg n levels
// of n/2 two-by-two switches.
type Network struct {
	n, q int
	topo Topology
}

// New returns a network of the given size, which must be a power of two
// and at least 2.
func New(n int, topo Topology) (*Network, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("banyan: size %d is not a power of two ≥ 2", n)
	}
	q := 0
	for 1<<uint(q) < n {
		q++
	}
	return &Network{n: n, q: q, topo: topo}, nil
}

// Size returns the number of inputs/outputs.
func (nw *Network) Size() int { return nw.n }

// Levels returns the number of switch levels (lg n).
func (nw *Network) Levels() int { return nw.q }

// SwitchCount returns the total number of 2×2 switches, (n/2)·lg n.
func (nw *Network) SwitchCount() int { return nw.n / 2 * nw.q }

// Route is the result of routing a request set through the network.
type Route struct {
	// Out[i] is the output reached by the packet injected at input i,
	// or −1 if input i was idle or its packet was dropped by a
	// conflict.
	Out []int
	// Conflicts is the number of switch conflicts encountered. A
	// successful (non-blocking) route has zero.
	Conflicts int
}

// RouteDests routes packets with explicit destinations: dest[i] is the
// desired output of input i, or −1 for an idle input. On a switch
// conflict the packet from the higher-numbered port is dropped and the
// conflict counted. Destinations must be in range and, among non-idle
// inputs, distinct.
func (nw *Network) RouteDests(dest []int) (*Route, error) {
	if len(dest) != nw.n {
		return nil, fmt.Errorf("banyan: %d destinations for %d inputs", len(dest), nw.n)
	}
	seen := make([]bool, nw.n)
	for i, d := range dest {
		if d == -1 {
			continue
		}
		if d < 0 || d >= nw.n {
			return nil, fmt.Errorf("banyan: destination %d of input %d out of range", d, i)
		}
		if seen[d] {
			return nil, fmt.Errorf("banyan: duplicate destination %d", d)
		}
		seen[d] = true
	}

	// pos[p] = destination of the packet currently at node p, −1 if none.
	// src[p] = original input of that packet.
	pos := append([]int(nil), dest...)
	src := make([]int, nw.n)
	for i := range src {
		src[i] = i
	}
	if nw.topo == Omega {
		// The omega network shuffles before every exchange level.
		pos, src = nw.shuffle(pos), nw.shuffleInts(src)
	}

	rt := &Route{Out: make([]int, nw.n)}
	for i := range rt.Out {
		rt.Out[i] = -1
	}
	for lvl := 0; lvl < nw.q; lvl++ {
		bit := nw.routeBit(lvl)
		mask := nw.pairMask(lvl)
		nextPos := make([]int, nw.n)
		nextSrc := make([]int, nw.n)
		for i := range nextPos {
			nextPos[i] = -1
			nextSrc[i] = -1
		}
		for lo := 0; lo < nw.n; lo++ {
			hi := lo | mask
			if lo&mask != 0 {
				continue // visit each pair once, from its low node
			}
			place := func(p, s int) bool {
				if p == -1 {
					return true
				}
				tgt := lo
				if p&(1<<uint(bit)) != 0 {
					tgt = hi
				}
				if nextPos[tgt] != -1 {
					rt.Conflicts++
					return false
				}
				nextPos[tgt] = p
				nextSrc[tgt] = s
				return true
			}
			place(pos[lo], src[lo])
			place(pos[hi], src[hi])
		}
		pos, src = nextPos, nextSrc
		if nw.topo == Omega && lvl+1 < nw.q {
			pos, src = nw.shuffle(pos), nw.shuffleInts(src)
		}
	}
	for p := 0; p < nw.n; p++ {
		if src[p] != -1 {
			rt.Out[src[p]] = p
		}
	}
	return rt, nil
}

// routeBit returns the destination bit examined at the given level.
func (nw *Network) routeBit(lvl int) int {
	switch nw.topo {
	case ButterflyLSB:
		return lvl
	default: // ButterflyMSB, Omega
		return nw.q - 1 - lvl
	}
}

// pairMask returns the XOR mask pairing nodes at the given level.
func (nw *Network) pairMask(lvl int) int {
	switch nw.topo {
	case ButterflyLSB:
		return 1 << uint(lvl)
	case ButterflyMSB:
		return 1 << uint(nw.q-1-lvl)
	default: // Omega exchanges adjacent nodes after each shuffle
		return 1
	}
}

// shuffle applies the perfect shuffle (rotate node index left by one
// bit) to a per-node slice.
func (nw *Network) shuffle(xs []int) []int {
	out := make([]int, nw.n)
	for i, x := range xs {
		j := ((i << 1) | (i >> uint(nw.q-1))) & (nw.n - 1)
		out[j] = x
	}
	return out
}

func (nw *Network) shuffleInts(xs []int) []int { return nw.shuffle(xs) }

// RouteConcentration routes the valid inputs to the output prefix: the
// j-th valid input (j = 1, 2, ...) is destined for output j−1. For the
// ButterflyLSB topology this never conflicts (Theorem: concentration is
// a monotone compact request set; see package comment).
func (nw *Network) RouteConcentration(valid *bitvec.Vector) (*Route, error) {
	if valid.Len() != nw.n {
		return nil, fmt.Errorf("banyan: %d valid bits for %d inputs", valid.Len(), nw.n)
	}
	dest := make([]int, nw.n)
	rank := 0
	for i := 0; i < nw.n; i++ {
		if valid.Get(i) {
			dest[i] = rank
			rank++
		} else {
			dest[i] = -1
		}
	}
	return nw.RouteDests(dest)
}

// EmitSelfRouting appends to net a combinational self-routing datapath
// for this network. Each input i carries a valid bit, a destination bus
// (all buses must share a width ≥ Levels()), and a payload bit. The
// switches derive their own control from the arriving valid bits and
// destination bits, exactly as the setup cycle of §2 establishes
// electrical paths. It returns the per-output valid and payload
// signals.
//
// The emitted datapath assumes a conflict-free request set (as produced
// by concentration on ButterflyLSB); under conflicts its behaviour
// matches "the packet needing a cross takes priority", which is
// well-defined but not a useful route. Only ButterflyLSB and
// ButterflyMSB can be emitted; Omega's inter-level shuffles are pure
// wiring and are folded into the pairing, so it is not needed.
func (nw *Network) EmitSelfRouting(net *logic.Net, valid []logic.Signal, dest []logic.Bus, payload []logic.Signal) (validOut, payloadOut []logic.Signal, err error) {
	if nw.topo == Omega {
		return nil, nil, fmt.Errorf("banyan: EmitSelfRouting does not support omega topology")
	}
	if len(valid) != nw.n || len(dest) != nw.n || len(payload) != nw.n {
		return nil, nil, fmt.Errorf("banyan: emit arity mismatch (valid %d, dest %d, payload %d, want %d)",
			len(valid), len(dest), len(payload), nw.n)
	}
	for i, b := range dest {
		if len(b) < nw.q {
			return nil, nil, fmt.Errorf("banyan: destination bus %d has %d bits, need ≥ %d", i, len(b), nw.q)
		}
	}

	v := append([]logic.Signal(nil), valid...)
	p := append([]logic.Signal(nil), payload...)
	d := make([]logic.Bus, nw.n)
	for i := range d {
		d[i] = append(logic.Bus(nil), dest[i]...)
	}

	for lvl := 0; lvl < nw.q; lvl++ {
		bit := nw.routeBit(lvl)
		mask := nw.pairMask(lvl)
		nv := make([]logic.Signal, nw.n)
		np := make([]logic.Signal, nw.n)
		nd := make([]logic.Bus, nw.n)
		for lo := 0; lo < nw.n; lo++ {
			if lo&mask != 0 {
				continue
			}
			hi := lo | mask
			// cross = packet at lo wants hi, or packet at hi wants lo.
			wantCrossLo := net.And(v[lo], d[lo][bit])
			wantCrossHi := net.And(v[hi], net.Not(d[hi][bit]))
			cross := net.Or(wantCrossLo, wantCrossHi)

			nv[lo] = net.Mux(cross, v[hi], v[lo])
			nv[hi] = net.Mux(cross, v[lo], v[hi])
			np[lo] = net.Mux(cross, p[hi], p[lo])
			np[hi] = net.Mux(cross, p[lo], p[hi])
			nd[lo] = make(logic.Bus, nw.q)
			nd[hi] = make(logic.Bus, nw.q)
			for b := 0; b < nw.q; b++ {
				nd[lo][b] = net.Mux(cross, d[hi][b], d[lo][b])
				nd[hi][b] = net.Mux(cross, d[lo][b], d[hi][b])
			}
		}
		v, p, d = nv, np, nd
	}
	return v, p, nil
}
