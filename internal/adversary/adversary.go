// Package adversary searches for worst-case valid-bit patterns: inputs
// that minimize a switch's delivered fraction. Random and structured
// traffic leave the paper's load-ratio bounds looking slack (T3/T4);
// randomized hill climbing probes how bad the switches can actually be
// made, giving a much tighter empirical floor.
package adversary

import (
	"fmt"
	"math/rand"

	"concentrators/internal/bitvec"
	"concentrators/internal/core"
)

// Result is the outcome of a worst-pattern search.
type Result struct {
	// Pattern is the worst valid-bit pattern found.
	Pattern *bitvec.Vector
	// Ratio is its delivered fraction: routed / min(k, m).
	Ratio float64
	// Evaluations counts Route calls spent.
	Evaluations int
}

// ratio computes routed / min(k, m); patterns with k = 0 score 1 (no
// traffic, nothing to lose).
func ratio(sw core.Concentrator, v *bitvec.Vector) (float64, error) {
	k := v.Count()
	if k == 0 {
		return 1, nil
	}
	out, err := sw.Route(v)
	if err != nil {
		return 0, err
	}
	routed := 0
	for _, o := range out {
		if o >= 0 {
			routed++
		}
	}
	denom := k
	if m := sw.Outputs(); m < denom {
		denom = m
	}
	return float64(routed) / float64(denom), nil
}

// WorstPattern hill-climbs toward the pattern minimizing the delivered
// fraction: from each of `restarts` random starts it tries `steps`
// single-bit flips, keeping any flip that does not increase the ratio
// (plateau walking included). It returns the worst pattern found.
func WorstPattern(sw core.Concentrator, rng *rand.Rand, restarts, steps int) (*Result, error) {
	if restarts < 1 || steps < 1 {
		return nil, fmt.Errorf("adversary: restarts and steps must be ≥ 1")
	}
	n := sw.Inputs()
	best := &Result{Ratio: 2}
	for r := 0; r < restarts; r++ {
		cur := bitvec.New(n)
		load := rng.Float64()
		for i := 0; i < n; i++ {
			cur.Set(i, rng.Float64() < load)
		}
		curScore, err := ratio(sw, cur)
		if err != nil {
			return nil, err
		}
		best.Evaluations++
		for s := 0; s < steps; s++ {
			i := rng.Intn(n)
			cand := cur.Clone()
			cand.Set(i, !cand.Get(i))
			cs, err := ratio(sw, cand)
			if err != nil {
				return nil, err
			}
			best.Evaluations++
			if cs <= curScore {
				cur, curScore = cand, cs
			}
		}
		if curScore < best.Ratio {
			best.Ratio = curScore
			best.Pattern = cur
		}
	}
	if best.Pattern == nil {
		best.Pattern = bitvec.New(n)
		best.Ratio = 1
	}
	return best, nil
}

// VerifyAgainstBound checks that the found worst ratio still respects
// the switch's Lemma 2 guarantee: the switch must deliver at least
// min(k, m−ε) messages, i.e. ratio ≥ (m−ε)/min(k, m) for the worst
// pattern. It returns an error if the guarantee is violated.
func VerifyAgainstBound(sw core.Concentrator, res *Result) error {
	k := res.Pattern.Count()
	if k == 0 {
		return nil
	}
	need := core.Threshold(sw)
	if k < need {
		need = k
	}
	denom := k
	if m := sw.Outputs(); m < denom {
		denom = m
	}
	floor := float64(need) / float64(denom)
	if res.Ratio < floor-1e-9 {
		return fmt.Errorf("adversary: worst ratio %.4f violates guarantee floor %.4f (k=%d)",
			res.Ratio, floor, k)
	}
	return nil
}
