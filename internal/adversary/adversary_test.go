package adversary

import (
	"math/rand"
	"testing"

	"concentrators/internal/bitvec"
	"concentrators/internal/core"
)

func TestValidation(t *testing.T) {
	sw, _ := core.NewPerfectSwitch(8, 4)
	rng := rand.New(rand.NewSource(1))
	if _, err := WorstPattern(sw, rng, 0, 5); err == nil {
		t.Error("accepted zero restarts")
	}
	if _, err := WorstPattern(sw, rng, 1, 0); err == nil {
		t.Error("accepted zero steps")
	}
}

// A perfect concentrator cannot be made to drop below ratio 1.
func TestPerfectSwitchUnbreakable(t *testing.T) {
	sw, err := core.NewPerfectSwitch(32, 8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	res, err := WorstPattern(sw, rng, 5, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ratio != 1 {
		t.Errorf("perfect switch worst ratio = %v, want 1", res.Ratio)
	}
	if err := VerifyAgainstBound(sw, res); err != nil {
		t.Error(err)
	}
}

// The adversary finds genuinely worse patterns than random sampling on
// a partial concentrator whose ε bound bites.
func TestAdversaryBeatsRandomOnColumnsort(t *testing.T) {
	sw, err := core.NewColumnsortSwitch(16, 16, 128) // β=1/2 shape: ε=225 ≥ m
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	// Random baseline: best (lowest) ratio over the same eval budget.
	randWorst := 1.0
	for evals := 0; evals < 600; evals++ {
		pat := randomPattern(rng, sw.Inputs())
		r, err := ratio(sw, pat)
		if err != nil {
			t.Fatal(err)
		}
		if r < randWorst {
			randWorst = r
		}
	}
	res, err := WorstPattern(sw, rng, 3, 199) // ≈ 600 evaluations
	if err != nil {
		t.Fatal(err)
	}
	if res.Ratio > randWorst {
		t.Errorf("adversary (%.4f) did not beat random sampling (%.4f)", res.Ratio, randWorst)
	}
	if res.Ratio >= 1 {
		t.Errorf("adversary found no loss at all on a lossy switch (ratio %v)", res.Ratio)
	}
	if err := VerifyAgainstBound(sw, res); err != nil {
		t.Error(err)
	}
}

func randomPattern(rng *rand.Rand, n int) *bitvec.Vector {
	v := bitvec.New(n)
	for i := 0; i < n; i++ {
		v.Set(i, rng.Intn(2) == 1)
	}
	return v
}

// The guarantee floor holds for every switch the adversary attacks —
// Theorems 3 and 4 under adversarial search rather than random traffic.
func TestGuaranteeHoldsUnderAttack(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	switches := []core.Concentrator{}
	if sw, err := core.NewRevsortSwitch(256, 128); err == nil {
		switches = append(switches, sw)
	}
	if sw, err := core.NewColumnsortSwitch(64, 4, 128); err == nil {
		switches = append(switches, sw)
	}
	if sw, err := core.NewColumnsortSwitch(32, 8, 128); err == nil {
		switches = append(switches, sw)
	}
	for _, sw := range switches {
		res, err := WorstPattern(sw, rng, 4, 150)
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyAgainstBound(sw, res); err != nil {
			t.Errorf("%s: %v", sw.Name(), err)
		}
		if res.Evaluations < 4*150 {
			t.Errorf("%s: evaluation accounting wrong: %d", sw.Name(), res.Evaluations)
		}
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	sw, _ := core.NewColumnsortSwitch(16, 4, 32)
	a, err := WorstPattern(sw, rand.New(rand.NewSource(5)), 3, 50)
	if err != nil {
		t.Fatal(err)
	}
	b, err := WorstPattern(sw, rand.New(rand.NewSource(5)), 3, 50)
	if err != nil {
		t.Fatal(err)
	}
	if a.Ratio != b.Ratio || !a.Pattern.Equal(b.Pattern) {
		t.Error("search not deterministic under a fixed seed")
	}
}
