package shifter

import (
	"math/rand"
	"testing"

	"concentrators/internal/logic"
)

func TestControlBits(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 8: 3, 9: 4, 16: 4}
	for w, want := range cases {
		if got := ControlBits(w); got != want {
			t.Errorf("ControlBits(%d) = %d, want %d", w, got, want)
		}
	}
}

func TestRotateReference(t *testing.T) {
	bits := []bool{true, false, false, true}
	got := Rotate(bits, 1)
	want := []bool{true, true, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Rotate = %v, want %v", got, want)
		}
	}
	if r := Rotate(bits, -3); r[0] != got[0] || r[1] != got[1] {
		t.Error("negative amount should wrap")
	}
	if Rotate(nil, 5) != nil {
		t.Error("empty rotate should be nil")
	}
}

func TestBuildShifterExhaustive(t *testing.T) {
	for _, w := range []int{1, 2, 4, 8} {
		net, err := Build(w)
		if err != nil {
			t.Fatal(err)
		}
		cb := ControlBits(w)
		for amount := 0; amount < w; amount++ {
			for pat := 0; pat < 1<<uint(w); pat++ {
				in := make([]bool, w+cb)
				data := make([]bool, w)
				for i := 0; i < w; i++ {
					data[i] = pat&(1<<uint(i)) != 0
					in[i] = data[i]
				}
				for k := 0; k < cb; k++ {
					in[w+k] = amount&(1<<uint(k)) != 0
				}
				got := net.Eval(in)
				want := Rotate(data, amount)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("w=%d amount=%d pattern %0*b: output %d wrong", w, amount, w, pat, i)
					}
				}
			}
		}
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(0); err == nil {
		t.Error("Build(0) accepted")
	}
	if _, err := BuildHardwired(0, 0); err == nil {
		t.Error("BuildHardwired(0,0) accepted")
	}
}

// The §4 claim: the hardwired shifter is pure wiring — zero gate
// delays, zero gates — while the general shifter has Θ(lg w) depth.
func TestHardwiredShifterIsPureWiring(t *testing.T) {
	for _, w := range []int{4, 8, 16, 64} {
		general, err := Build(w)
		if err != nil {
			t.Fatal(err)
		}
		if d := general.Depth(); d < ControlBits(w) {
			t.Errorf("w=%d: general shifter depth %d below lg w", w, d)
		}
		for _, amount := range []int{0, 1, w / 2, w - 1} {
			hw, err := BuildHardwired(w, amount)
			if err != nil {
				t.Fatal(err)
			}
			if hw.Depth() != 0 {
				t.Errorf("w=%d amount=%d: hardwired depth = %d, want 0", w, amount, hw.Depth())
			}
			if hw.GateCount() != 0 {
				t.Errorf("w=%d amount=%d: hardwired gates = %d, want 0", w, amount, hw.GateCount())
			}
		}
	}
}

func TestHardwiredShifterFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, w := range []int{3, 8, 16} {
		for amount := 0; amount < w; amount++ {
			net, err := BuildHardwired(w, amount)
			if err != nil {
				t.Fatal(err)
			}
			for trial := 0; trial < 20; trial++ {
				data := make([]bool, w)
				for i := range data {
					data[i] = rng.Intn(2) == 1
				}
				got := net.Eval(data)
				want := Rotate(data, amount)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("w=%d amount=%d: mismatch at %d", w, amount, i)
					}
				}
			}
		}
	}
}

// The shifter embeds cleanly into a larger netlist (as on the stage-2
// boards, where it follows the hyperconcentrator chip).
func TestShifterEmbeds(t *testing.T) {
	hw, err := BuildHardwired(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	n := logic.New()
	in := n.Inputs("x", 4)
	out, err := n.Embed(hw, in)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range out {
		n.MarkOutput("o", s)
		_ = i
	}
	got := n.Eval([]bool{true, false, false, false})
	if !got[1] || got[0] || got[2] || got[3] {
		t.Errorf("embedded shifter wrong: %v", got)
	}
}
