// Package shifter implements the √n-bit barrel shifter chip of §4: the
// stage-2 boards of the Revsort switch follow each hyperconcentrator
// chip with a barrel shifter whose ⌈lg √n⌉ control bits are HARDWIRED
// to rev(i) after board fabrication.
//
// Two gate-level artifacts are provided: the general shifter (a mux
// tree, Θ(lg w) gate delays) and the hardwired instance, which — after
// constant propagation (logic.Optimize) — collapses to pure wiring,
// making the paper's "the barrel shifters introduce only a constant
// number of gate delays" claim directly measurable.
package shifter

import (
	"fmt"

	"concentrators/internal/logic"
)

// ControlBits returns the number of control bits of a w-bit shifter:
// ⌈lg w⌉.
func ControlBits(w int) int {
	c := 0
	for (1 << uint(c)) < w {
		c++
	}
	return c
}

// Build emits a w-bit right-rotating barrel shifter into a fresh
// netlist. Inputs: d.0..d.{w−1} (data), then c.0..c.{cb−1} (rotation
// amount, LSB first). Outputs: o.0..o.{w−1} with
// o[(j+amount) mod w] = d[j].
func Build(w int) (*logic.Net, error) {
	if w < 1 {
		return nil, fmt.Errorf("shifter: width %d must be ≥ 1", w)
	}
	net := logic.New()
	data := make([]logic.Signal, w)
	for i := range data {
		data[i] = net.Input(fmt.Sprintf("d.%d", i))
	}
	cb := ControlBits(w)
	ctrl := make([]logic.Signal, cb)
	for i := range ctrl {
		ctrl[i] = net.Input(fmt.Sprintf("c.%d", i))
	}
	out := emit(net, data, ctrl, w)
	for i, s := range out {
		net.MarkOutput(fmt.Sprintf("o.%d", i), s)
	}
	return net, nil
}

// emit appends the shifter logic: stage k conditionally rotates right
// by 2^k under ctrl[k].
func emit(net *logic.Net, data, ctrl []logic.Signal, w int) []logic.Signal {
	cur := append([]logic.Signal(nil), data...)
	for k, sel := range ctrl {
		step := 1 << uint(k) % w
		next := make([]logic.Signal, w)
		for j := 0; j < w; j++ {
			// Rotated: output j receives input (j − step) mod w.
			src := ((j-step)%w + w) % w
			next[j] = net.Mux(sel, cur[src], cur[j])
		}
		cur = next
	}
	return cur
}

// BuildHardwired emits a w-bit shifter with the rotation amount
// hardwired (the control pins tied to constants, as on the fabricated
// stage-2 boards) and constant-folds it. The result rotates right by
// amount with ZERO gate delays — it is pure wiring.
func BuildHardwired(w, amount int) (*logic.Net, error) {
	if w < 1 {
		return nil, fmt.Errorf("shifter: width %d must be ≥ 1", w)
	}
	amount = ((amount % w) + w) % w
	if cb := ControlBits(w); amount >= 1<<uint(cb) && amount != 0 {
		return nil, fmt.Errorf("shifter: amount %d not encodable in %d control bits", amount, cb)
	}
	net := logic.New()
	data := make([]logic.Signal, w)
	for i := range data {
		data[i] = net.Input(fmt.Sprintf("d.%d", i))
	}
	cb := ControlBits(w)
	ctrl := make([]logic.Signal, cb)
	for k := range ctrl {
		ctrl[k] = net.Const(amount&(1<<uint(k)) != 0)
	}
	out := emit(net, data, ctrl, w)
	for i, s := range out {
		net.MarkOutput(fmt.Sprintf("o.%d", i), s)
	}
	return net.Optimize(), nil
}

// Rotate is the functional reference: rotate the bits right by amount.
func Rotate(bits []bool, amount int) []bool {
	w := len(bits)
	if w == 0 {
		return nil
	}
	amount = ((amount % w) + w) % w
	out := make([]bool, w)
	for j, b := range bits {
		out[(j+amount)%w] = b
	}
	return out
}
