package overload

import (
	"fmt"
	"math"
	"math/rand"
)

// RetryConfig tunes the client-side retry budget and backoff. The
// budget is a token bucket refilled by fresh offers: each new message
// earns Budget retry tokens, each retry spends one, and a client out
// of tokens fails fast (the message is shed) instead of feeding a
// retry storm. The backoff is full-jitter exponential, so a cohort of
// messages shed in the same round desynchronizes instead of returning
// as a thundering herd.
type RetryConfig struct {
	// Budget is the retry-to-offer ratio: tokens earned per fresh
	// offer. 0 means the default (0.5); it must stay below ~1 for the
	// budget to bound retry amplification.
	Budget float64
	// BackoffBase is the first retry's maximum wait in rounds; the
	// window doubles per attempt. 0 means the default (1).
	BackoffBase int
	// BackoffCap caps the jitter window in rounds. 0 means the default
	// (16).
	BackoffCap int
	// Burst caps the token bucket, bounding the retry burst after an
	// idle stretch. 0 means the default (8).
	Burst float64
}

func (c RetryConfig) withDefaults() RetryConfig {
	if c.Budget == 0 {
		c.Budget = 0.5
	}
	if c.BackoffBase == 0 {
		c.BackoffBase = 1
	}
	if c.BackoffCap == 0 {
		c.BackoffCap = 16
	}
	if c.Burst == 0 {
		c.Burst = 8
	}
	return c
}

// Validate rejects malformed retry budgets.
func (c RetryConfig) Validate() error {
	d := c.withDefaults()
	switch {
	case math.IsNaN(d.Budget) || d.Budget < 0:
		return fmt.Errorf("overload: retry budget %v must be positive", c.Budget)
	case d.BackoffBase < 1:
		return fmt.Errorf("overload: backoff base %d must be ≥ 1 round", c.BackoffBase)
	case d.BackoffCap < d.BackoffBase:
		return fmt.Errorf("overload: backoff cap %d below base %d", d.BackoffCap, d.BackoffBase)
	case math.IsNaN(d.Burst) || d.Burst < 1:
		return fmt.Errorf("overload: retry burst %v must be ≥ 1", c.Burst)
	}
	return nil
}

// RetryBudget is the token-bucket state. Not safe for concurrent use.
type RetryBudget struct {
	cfg    RetryConfig
	tokens float64
	// accounting
	allowed, denied int
}

// NewRetryBudget builds a budget starting with a full burst.
func NewRetryBudget(cfg RetryConfig) (*RetryBudget, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	return &RetryBudget{cfg: cfg, tokens: cfg.Burst}, nil
}

// Earn credits one fresh offer's worth of retry tokens.
func (b *RetryBudget) Earn() {
	b.tokens += b.cfg.Budget
	if b.tokens > b.cfg.Burst {
		b.tokens = b.cfg.Burst
	}
}

// Allow spends one token if available; a false return means the retry
// is over budget and the message must be shed (fail fast).
func (b *RetryBudget) Allow() bool {
	if b.tokens >= 1 {
		b.tokens--
		b.allowed++
		return true
	}
	b.denied++
	return false
}

// Backoff draws the jittered wait before a message's next offer:
// uniform in [1, min(base·2^(attempt−1), cap)] — full jitter, so
// same-round cohorts spread across the whole window.
func (b *RetryBudget) Backoff(attempt int, rng *rand.Rand) int {
	if attempt < 1 {
		attempt = 1
	}
	window := b.cfg.BackoffCap
	if attempt-1 < 30 {
		if w := b.cfg.BackoffBase << uint(attempt-1); w < window {
			window = w
		}
	}
	return 1 + rng.Intn(window)
}

// Tokens returns the current bucket level.
func (b *RetryBudget) Tokens() float64 { return b.tokens }

// Allowed returns how many retries the budget admitted; Denied how
// many it shed.
func (b *RetryBudget) Allowed() int { return b.allowed }

// Denied returns the fail-fast count.
func (b *RetryBudget) Denied() int { return b.denied }
