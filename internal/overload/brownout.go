package overload

import (
	"fmt"
	"math"
)

// BrownoutConfig tunes the sustained-overload contract stepdown.
//
//	Nominal ──EnterAfter congested rounds──▶ Level 1 ── … ──▶ MaxLevel
//	   ▲                                        │
//	   └───────ExitAfter consecutive clean──────┘  (one level at a time)
//
// Each level multiplies the advertised threshold by Step — the pool
// deliberately lowers its effective α: it admits less and delivers
// predictably, instead of advertising a contract it can no longer
// honor under the offered load. Stepping back up mirrors the breaker's
// half-open probation: a full ExitAfter window of clean rounds must
// elapse per level, so a flapping overload cannot oscillate the
// contract every round.
type BrownoutConfig struct {
	// EnterAfter is the consecutive congested rounds before stepping
	// one level down. 0 means the default (8).
	EnterAfter int
	// ExitAfter is the consecutive clean rounds before stepping one
	// level back up — the probation window. 0 means the default (16).
	ExitAfter int
	// Step is the per-level threshold multiplier. 0 means the default
	// (0.75).
	Step float64
	// MaxLevel bounds the descent. 0 means the default (3).
	MaxLevel int
}

func (c BrownoutConfig) withDefaults() BrownoutConfig {
	if c.EnterAfter == 0 {
		c.EnterAfter = 8
	}
	if c.ExitAfter == 0 {
		c.ExitAfter = 16
	}
	if c.Step == 0 {
		c.Step = 0.75
	}
	if c.MaxLevel == 0 {
		c.MaxLevel = 3
	}
	return c
}

// Validate rejects degenerate brownout parameters.
func (c BrownoutConfig) Validate() error {
	d := c.withDefaults()
	switch {
	case d.EnterAfter < 1 || d.ExitAfter < 1:
		return fmt.Errorf("overload: brownout windows need ≥ 1 round, got enter %d exit %d", c.EnterAfter, c.ExitAfter)
	case math.IsNaN(d.Step) || d.Step <= 0 || d.Step >= 1:
		return fmt.Errorf("overload: brownout step %v outside (0,1)", c.Step)
	case d.MaxLevel < 1:
		return fmt.Errorf("overload: brownout max level %d must be ≥ 1", c.MaxLevel)
	}
	return nil
}

// Brownout is the degradation state machine. Not safe for concurrent
// use; the pool drives it under its own lock.
type Brownout struct {
	cfg         BrownoutConfig
	level       int
	congStreak  int
	cleanStreak int
	// transition ledger
	enters, exits int
}

// NewBrownout builds the state machine at nominal level 0.
func NewBrownout(cfg BrownoutConfig) (*Brownout, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Brownout{cfg: cfg.withDefaults()}, nil
}

// Observe feeds one round's congestion verdict and reports whether the
// level changed.
func (b *Brownout) Observe(congested bool) (changed bool) {
	if congested {
		b.cleanStreak = 0
		b.congStreak++
		if b.congStreak >= b.cfg.EnterAfter && b.level < b.cfg.MaxLevel {
			b.level++
			b.enters++
			b.congStreak = 0
			return true
		}
		return false
	}
	b.congStreak = 0
	b.cleanStreak++
	if b.cleanStreak >= b.cfg.ExitAfter && b.level > 0 {
		b.level--
		b.exits++
		b.cleanStreak = 0
		return true
	}
	return false
}

// Level returns the current degradation level (0 = nominal).
func (b *Brownout) Level() int { return b.level }

// Scale returns the contract multiplier the level implies: Step^level.
func (b *Brownout) Scale() float64 {
	return math.Pow(b.cfg.Step, float64(b.level))
}

// Enters returns the booked step-down transitions; Exits the booked
// step-ups.
func (b *Brownout) Enters() int { return b.enters }

// Exits returns the booked step-up transitions.
func (b *Brownout) Exits() int { return b.exits }
