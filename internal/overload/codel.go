package overload

import (
	"fmt"
	"math"
)

// CoDelConfig tunes the controlled-delay backlog drain. Sojourn time
// is measured in rounds since a message's first offer.
type CoDelConfig struct {
	// Target is the acceptable standing sojourn in rounds. 0 means the
	// default (2).
	Target int
	// Interval is how long the sojourn must stay above Target before
	// the drain opens. Must be strictly greater than Target (a drain
	// that opens before one target-worth of queueing has been observed
	// is just a tail drop). 0 means the default (8).
	Interval int
}

func (c CoDelConfig) withDefaults() CoDelConfig {
	if c.Target == 0 {
		c.Target = 2
	}
	if c.Interval == 0 {
		c.Interval = 8
	}
	return c
}

// Validate rejects degenerate drain parameters — in particular a
// target at or above the interval.
func (c CoDelConfig) Validate() error {
	d := c.withDefaults()
	switch {
	case d.Target < 1:
		return fmt.Errorf("overload: CoDel target %d must be ≥ 1 round", c.Target)
	case d.Interval <= d.Target:
		return fmt.Errorf("overload: CoDel target %d ≥ interval %d (the drain needs Target < Interval)", d.Target, d.Interval)
	}
	return nil
}

// CoDel implements the controlled-delay drop-from-queue rule over a
// round-based backlog: once the head-of-queue sojourn has exceeded
// Target continuously for Interval rounds, the drain opens and sheds
// queue heads — at an interval/√count cadence that accelerates while
// the overload persists — until the sojourn falls back under Target,
// which closes the episode. Dropping from the queue head (the oldest
// message) is deliberate: it is the message most likely past its
// deadline anyway, and shedding it frees capacity for young traffic.
type CoDel struct {
	cfg        CoDelConfig
	firstAbove int // round the sojourn first exceeded Target (−1: not above)
	dropNext   int // next scheduled drop round while draining
	draining   bool
	count      int // drops this episode, drives the √count acceleration
	episodes   int
	dropped    int
}

// NewCoDel builds the drain.
func NewCoDel(cfg CoDelConfig) (*CoDel, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &CoDel{cfg: cfg.withDefaults(), firstAbove: -1}, nil
}

// spacing is the interval/√count control law, floored at one round.
func (c *CoDel) spacing() int {
	s := int(math.Round(float64(c.cfg.Interval) / math.Sqrt(float64(c.count))))
	if s < 1 {
		s = 1
	}
	return s
}

// Drop reports whether the current queue head (with the given sojourn
// in rounds, observed at the given round) should be shed. Callers loop
// — re-measuring the new head's sojourn after each shed — until Drop
// returns false; the √count acceleration lets a persistent episode
// drain multiple heads per round.
func (c *CoDel) Drop(round, sojourn int) bool {
	if sojourn < c.cfg.Target {
		c.firstAbove = -1
		c.draining = false
		return false
	}
	if c.firstAbove < 0 {
		// First observation above target: arm the interval timer.
		c.firstAbove = round
		return false
	}
	if !c.draining {
		if round-c.firstAbove < c.cfg.Interval {
			return false
		}
		c.draining = true
		c.episodes++
		c.count = 1
		c.dropped++
		c.dropNext = round + c.spacing()
		return true
	}
	if round >= c.dropNext {
		c.count++
		c.dropped++
		c.dropNext = round + c.spacing()
		return true
	}
	return false
}

// Episodes returns how many drain episodes have opened.
func (c *CoDel) Episodes() int { return c.episodes }

// Dropped returns the total queue heads shed by the drain.
func (c *CoDel) Dropped() int { return c.dropped }
