// Package overload closes the load failure plane: every fault plane
// built so far (chips, replicas, wires, timing) assumes the offered
// load is well behaved, yet the paper's guarantee is load-conditional —
// an (n, m, α) partial concentrator delivers all k valid inputs only
// while k ≤ αm. This package supplies the machinery that keeps goodput
// monotone when k is NOT well behaved:
//
//   - Plane: a seeded surge fault plane mirroring timing.Plane /
//     link.CorruptionPlane — bounded-window load faults (step surge,
//     ramp, flash-crowd spike, sustained oversubscription) that
//     multiply the offered load per round, deterministic in
//     (seed, round);
//   - AIMD: a closed-loop admission controller over the admitted
//     fraction of the live ⌊α′m′⌋ threshold, driven by per-round
//     backlog and deadline-miss congestion signals;
//   - CoDel: a controlled-delay sojourn rule that drains a retry or
//     buffer backlog by dropping from the queue head once backlog age
//     has exceeded a target for a full interval, instead of buffering
//     without bound;
//   - RetryBudget: a token-bucket retry budget with jittered
//     exponential client backoff, so shed messages cannot synchronize
//     into a metastable retry storm;
//   - Brownout: a sustained-overload state machine that deliberately
//     steps the advertised contract down (lower effective α: admit
//     less, deliver predictably) and back up through a probation
//     window, with every transition booked.
package overload

import (
	"fmt"
	"math"
)

// Config aggregates the closed-loop controller knobs a pool installs.
type Config struct {
	// AIMD tunes the admission controller over the admitted fraction.
	// Zero fields take defaults.
	AIMD AIMDConfig
	// Brownout tunes the sustained-overload contract stepdown. Zero
	// fields take defaults.
	Brownout BrownoutConfig
	// BacklogFactor declares congestion when the client-reported
	// backlog exceeds BacklogFactor × the live threshold. 0 means the
	// default (2).
	BacklogFactor float64
}

// WithDefaults fills zero fields.
func (c Config) WithDefaults() Config {
	c.AIMD = c.AIMD.withDefaults()
	c.Brownout = c.Brownout.withDefaults()
	if c.BacklogFactor == 0 {
		c.BacklogFactor = 2
	}
	return c
}

// Validate rejects malformed controller configurations.
func (c Config) Validate() error {
	d := c.WithDefaults()
	if err := d.AIMD.Validate(); err != nil {
		return err
	}
	if err := d.Brownout.Validate(); err != nil {
		return err
	}
	if math.IsNaN(d.BacklogFactor) || d.BacklogFactor < 1 {
		return fmt.Errorf("overload: backlog factor %v must be ≥ 1", c.BacklogFactor)
	}
	return nil
}
