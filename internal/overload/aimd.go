package overload

import (
	"fmt"
	"math"
)

// AIMDConfig tunes the closed-loop admission controller. The
// controlled variable is the admitted fraction of the live ⌊α′m′⌋
// threshold: additive increase on clean rounds, multiplicative
// decrease on congested ones — the TCP-style control law whose fixed
// point keeps the goodput-vs-offered-load curve monotone.
type AIMDConfig struct {
	// Min and Max bound the admitted fraction. Zero means the defaults
	// (0.1 and 1.0).
	Min, Max float64
	// Increase is the additive fraction step per clean round. 0 means
	// the default (0.05).
	Increase float64
	// Decrease is the multiplicative factor applied per congested
	// round. 0 means the default (0.5).
	Decrease float64
}

func (c AIMDConfig) withDefaults() AIMDConfig {
	if c.Min == 0 {
		c.Min = 0.1
	}
	if c.Max == 0 {
		c.Max = 1.0
	}
	if c.Increase == 0 {
		c.Increase = 0.05
	}
	if c.Decrease == 0 {
		c.Decrease = 0.5
	}
	return c
}

// Validate rejects out-of-range AIMD bounds.
func (c AIMDConfig) Validate() error {
	d := c.withDefaults()
	switch {
	case math.IsNaN(d.Min) || math.IsNaN(d.Max) || d.Min < 0 || d.Min > d.Max || d.Max > 1:
		return fmt.Errorf("overload: AIMD bounds need 0 < Min ≤ Max ≤ 1, got [%v,%v]", c.Min, c.Max)
	case math.IsNaN(d.Increase) || d.Increase < 0 || d.Increase > 1:
		return fmt.Errorf("overload: AIMD additive increase %v outside (0,1]", c.Increase)
	case math.IsNaN(d.Decrease) || d.Decrease < 0 || d.Decrease >= 1:
		return fmt.Errorf("overload: AIMD multiplicative decrease %v outside (0,1)", c.Decrease)
	}
	return nil
}

// AIMD is the admission controller state. It is not safe for
// concurrent use; the pool drives it under its own lock.
type AIMD struct {
	cfg      AIMDConfig
	fraction float64
	// accounting
	increases, decreases int
}

// NewAIMD builds a controller starting at the Max fraction (fail open:
// an idle pool admits the full contract).
func NewAIMD(cfg AIMDConfig) (*AIMD, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	return &AIMD{cfg: cfg, fraction: cfg.Max}, nil
}

// Fraction returns the current admitted fraction.
func (a *AIMD) Fraction() float64 { return a.fraction }

// Cap returns the admission cap the fraction implies over a live
// threshold: ⌈fraction·thr⌉, never below 1 while the fabric has any
// capacity (a controller that admits zero can never observe recovery).
func (a *AIMD) Cap(thr int) int {
	if thr <= 0 {
		return 0
	}
	c := int(math.Ceil(a.fraction * float64(thr)))
	if c < 1 {
		c = 1
	}
	if c > thr {
		c = thr
	}
	return c
}

// OnCongestion applies the multiplicative decrease.
func (a *AIMD) OnCongestion() {
	a.fraction *= a.cfg.Decrease
	if a.fraction < a.cfg.Min {
		a.fraction = a.cfg.Min
	}
	a.decreases++
}

// OnClean applies the additive increase.
func (a *AIMD) OnClean() {
	a.fraction += a.cfg.Increase
	if a.fraction > a.cfg.Max {
		a.fraction = a.cfg.Max
	}
	a.increases++
}

// Decreases returns how many congestion signals the controller has
// absorbed; Increases how many clean rounds it has credited.
func (a *AIMD) Decreases() int { return a.decreases }

// Increases returns the clean-round credit count.
func (a *AIMD) Increases() int { return a.increases }
