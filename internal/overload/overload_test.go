package overload

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestSurgeFaultValidate(t *testing.T) {
	bad := []Fault{
		{Mode: Step, Factor: -2, From: 0, Until: 10},           // negative multiplier
		{Mode: Sustained, Factor: 0},                           // zero multiplier
		{Mode: Sustained, Factor: math.NaN()},                  // NaN multiplier
		{Mode: Sustained, Factor: math.Inf(1)},                 // infinite multiplier
		{Mode: Step, Factor: 2},                                // step needs a bounded window
		{Mode: Ramp, Factor: 2, From: 5},                       // ramp needs a bounded window
		{Mode: Step, Factor: 2, From: 10, Until: 5},            // empty window
		{Mode: Sustained, Factor: 2, From: -1},                 // negative From
		{Mode: Flash, Factor: 2, Prob: 0, From: 0, Until: 5},   // zero spike prob
		{Mode: Flash, Factor: 2, Prob: 1.5, From: 0, Until: 5}, // prob > 1
		{Mode: Mode(99), Factor: 2},                            // unknown mode
	}
	for _, f := range bad {
		if err := f.Validate(); err == nil {
			t.Errorf("Validate accepted %v", f)
		}
	}
	good := []Fault{
		{Mode: Step, Factor: 4, From: 10, Until: 20},
		{Mode: Ramp, Factor: 3, From: 0, Until: 30},
		{Mode: Flash, Factor: 8, Prob: 0.2},
		{Mode: Sustained, Factor: 4, From: 5},
		{Mode: Sustained, Factor: 0.5}, // a dip is a legal load fault
	}
	for _, f := range good {
		if err := f.Validate(); err != nil {
			t.Errorf("Validate rejected %v: %v", f, err)
		}
	}
}

func TestSurgePlaneShapes(t *testing.T) {
	p := NewPlane(1)
	if err := p.Add(Fault{Mode: Step, Factor: 4, From: 10, Until: 20}); err != nil {
		t.Fatal(err)
	}
	for round, want := range map[int]float64{0: 1, 9: 1, 10: 4, 19: 4, 20: 1} {
		if got := p.Multiplier(round); got != want {
			t.Errorf("step: round %d multiplier %v, want %v", round, got, want)
		}
	}

	r := NewPlane(1)
	if err := r.Add(Fault{Mode: Ramp, Factor: 5, From: 0, Until: 10}); err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for round := 0; round < 10; round++ {
		m := r.Multiplier(round)
		if m <= prev {
			t.Fatalf("ramp not increasing at round %d: %v ≤ %v", round, m, prev)
		}
		prev = m
	}
	if got := r.Multiplier(9); got != 5 {
		t.Errorf("ramp peak %v, want 5", got)
	}
	if got := r.Multiplier(10); got != 1 {
		t.Errorf("ramp after window %v, want 1", got)
	}

	s := NewPlane(1)
	if err := s.Add(Fault{Mode: Sustained, Factor: 4, From: 3}); err != nil {
		t.Fatal(err)
	}
	if got := s.Multiplier(2); got != 1 {
		t.Errorf("sustained before From: %v", got)
	}
	if got := s.Multiplier(1000); got != 4 {
		t.Errorf("sustained runs forever: %v, want 4", got)
	}
}

// Flash spikes are deterministic in (seed, round) regardless of call
// order, and hit roughly Prob of the rounds.
func TestSurgeFlashDeterministic(t *testing.T) {
	build := func() *Plane {
		p := NewPlane(42)
		if err := p.Add(Fault{Mode: Flash, Factor: 8, Prob: 0.25}); err != nil {
			t.Fatal(err)
		}
		return p
	}
	a, b := build(), build()
	spikes := 0
	for round := 0; round < 400; round++ {
		ma := a.Multiplier(round)
		if mb := b.Multiplier(399 - round); round == 399-round && ma != mb {
			t.Fatalf("round %d: call order changed the sample", round)
		}
		if ma != b.Multiplier(round) {
			t.Fatalf("round %d: %v vs %v across identical planes", round, ma, b.Multiplier(round))
		}
		if ma == 8 {
			spikes++
		} else if ma != 1 {
			t.Fatalf("round %d: flash multiplier %v is neither 1 nor 8", round, ma)
		}
	}
	if spikes < 50 || spikes > 150 {
		t.Errorf("flash hit %d/400 rounds, want ≈100", spikes)
	}
	if got := a.ExpectedMultiplier(7); math.Abs(got-(1+0.25*7)) > 1e-12 {
		t.Errorf("flash expected multiplier %v, want %v", got, 1+0.25*7)
	}
}

func TestSurgeCompoundAndClamp(t *testing.T) {
	p := NewPlane(3)
	if err := p.Add(Fault{Mode: Sustained, Factor: 2}); err != nil {
		t.Fatal(err)
	}
	if err := p.Add(Fault{Mode: Step, Factor: 3, From: 0, Until: 5}); err != nil {
		t.Fatal(err)
	}
	if got := p.Multiplier(0); got != 6 {
		t.Errorf("compound multiplier %v, want 6", got)
	}
	if got := p.Load(0, 0.3); got != 1 {
		t.Errorf("load must clamp to 1, got %v", got)
	}
	if got := p.Load(10, 0.3); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("load 0.3×2 = %v, want 0.6", got)
	}
	var nilPlane *Plane
	if nilPlane.Multiplier(5) != 1 || nilPlane.Load(5, 0.3) != 0.3 || nilPlane.Len() != 0 {
		t.Error("nil plane must be the identity")
	}
	if p.Clone().Multiplier(0) != 6 || len(p.Faults()) != 2 {
		t.Error("clone/faults lost the plane")
	}
}

func TestAIMDControlLaw(t *testing.T) {
	if _, err := NewAIMD(AIMDConfig{Min: 0.9, Max: 0.5}); err == nil {
		t.Error("accepted Min > Max")
	}
	if _, err := NewAIMD(AIMDConfig{Max: 1.5}); err == nil {
		t.Error("accepted Max > 1")
	}
	if _, err := NewAIMD(AIMDConfig{Decrease: math.NaN()}); err == nil {
		t.Error("accepted NaN decrease")
	}
	a, err := NewAIMD(AIMDConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Fraction() != 1.0 {
		t.Fatalf("controller must start at Max, got %v", a.Fraction())
	}
	a.OnCongestion()
	if a.Fraction() != 0.5 {
		t.Fatalf("multiplicative decrease: %v, want 0.5", a.Fraction())
	}
	a.OnClean()
	if math.Abs(a.Fraction()-0.55) > 1e-12 {
		t.Fatalf("additive increase: %v, want 0.55", a.Fraction())
	}
	for i := 0; i < 100; i++ {
		a.OnCongestion()
	}
	if a.Fraction() != 0.1 {
		t.Fatalf("decrease must floor at Min, got %v", a.Fraction())
	}
	if a.Cap(20) != 2 {
		t.Fatalf("cap at min fraction: %d, want 2", a.Cap(20))
	}
	if a.Cap(1) != 1 {
		t.Fatal("cap must never starve a live fabric")
	}
	if a.Cap(0) != 0 {
		t.Fatal("cap over a dead fabric must be 0")
	}
	for i := 0; i < 100; i++ {
		a.OnClean()
	}
	if a.Fraction() != 1.0 {
		t.Fatalf("increase must ceil at Max, got %v", a.Fraction())
	}
	if a.Decreases() != 101 || a.Increases() != 101 {
		t.Errorf("ledger %d/%d, want 101/101", a.Decreases(), a.Increases())
	}
}

func TestCoDelValidate(t *testing.T) {
	if err := (CoDelConfig{Target: 8, Interval: 8}).Validate(); err == nil {
		t.Error("accepted target == interval")
	}
	if err := (CoDelConfig{Target: 9, Interval: 8}).Validate(); err == nil {
		t.Error("accepted target > interval")
	}
	if err := (CoDelConfig{Target: -1, Interval: 8}).Validate(); err == nil {
		t.Error("accepted negative target")
	}
	if err := (CoDelConfig{}).Validate(); err != nil {
		t.Errorf("rejected defaults: %v", err)
	}
}

func TestCoDelDrainEpisode(t *testing.T) {
	c, err := NewCoDel(CoDelConfig{Target: 2, Interval: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Sojourn below target: never drops.
	for round := 0; round < 10; round++ {
		if c.Drop(round, 1) {
			t.Fatalf("round %d: dropped under target", round)
		}
	}
	// Sojourn above target: the interval must elapse first.
	for round := 10; round < 14; round++ {
		if c.Drop(round, 5) {
			t.Fatalf("round %d: dropped before the interval elapsed", round)
		}
	}
	if !c.Drop(14, 5) {
		t.Fatal("drain must open after a full interval above target")
	}
	if c.Episodes() != 1 {
		t.Fatalf("episodes = %d, want 1", c.Episodes())
	}
	// While draining, drops recur on the accelerating schedule.
	dropped := 1
	for round := 15; round < 40; round++ {
		for c.Drop(round, 5) {
			dropped++
		}
	}
	if dropped < 5 {
		t.Fatalf("persistent overload drained only %d heads", dropped)
	}
	// Recovery closes the episode; the next one re-arms from scratch.
	if c.Drop(40, 1) {
		t.Fatal("dropped after recovery")
	}
	for round := 41; round < 45; round++ {
		if c.Drop(round, 3) {
			t.Fatalf("round %d: new episode must re-arm the interval", round)
		}
	}
	if c.Dropped() != dropped {
		t.Fatalf("ledger %d, want %d", c.Dropped(), dropped)
	}
}

func TestRetryBudgetTokens(t *testing.T) {
	if _, err := NewRetryBudget(RetryConfig{Budget: -1}); err == nil {
		t.Error("accepted negative budget")
	}
	if _, err := NewRetryBudget(RetryConfig{BackoffBase: 8, BackoffCap: 2}); err == nil {
		t.Error("accepted cap below base")
	}
	b, err := NewRetryBudget(RetryConfig{Budget: 0.5, Burst: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Burn the initial burst.
	if !b.Allow() || !b.Allow() {
		t.Fatal("initial burst must allow retries")
	}
	if b.Allow() {
		t.Fatal("empty bucket must fail fast")
	}
	// Two fresh offers earn one retry at budget 0.5.
	b.Earn()
	if b.Allow() {
		t.Fatal("half a token is not a retry")
	}
	b.Earn()
	if !b.Allow() {
		t.Fatal("earned token must admit a retry")
	}
	if b.Allowed() != 3 || b.Denied() != 2 {
		t.Errorf("ledger %d/%d, want 3/2", b.Allowed(), b.Denied())
	}
	// Bucket saturates at Burst.
	for i := 0; i < 100; i++ {
		b.Earn()
	}
	if b.Tokens() != 2 {
		t.Errorf("bucket %v, want burst cap 2", b.Tokens())
	}
}

func TestRetryBackoffJitterBounds(t *testing.T) {
	b, err := NewRetryBudget(RetryConfig{BackoffBase: 2, BackoffCap: 16})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	seen := map[int]bool{}
	for i := 0; i < 500; i++ {
		for attempt, window := range map[int]int{1: 2, 2: 4, 3: 8, 4: 16, 5: 16, 40: 16} {
			d := b.Backoff(attempt, rng)
			if d < 1 || d > window {
				t.Fatalf("attempt %d: backoff %d outside [1,%d]", attempt, d, window)
			}
			if attempt == 4 {
				seen[d] = true
			}
		}
	}
	if len(seen) < 12 {
		t.Errorf("full jitter must spread the window, saw only %d/16 values", len(seen))
	}
}

func TestBrownoutStateMachine(t *testing.T) {
	if _, err := NewBrownout(BrownoutConfig{Step: 1.5}); err == nil {
		t.Error("accepted step ≥ 1")
	}
	b, err := NewBrownout(BrownoutConfig{EnterAfter: 3, ExitAfter: 4, Step: 0.5, MaxLevel: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Two congested rounds then a clean one: streak resets, no entry.
	b.Observe(true)
	b.Observe(true)
	b.Observe(false)
	if b.Level() != 0 {
		t.Fatal("entered before EnterAfter consecutive congested rounds")
	}
	// Three consecutive congested rounds step down one level.
	for i := 0; i < 3; i++ {
		b.Observe(true)
	}
	if b.Level() != 1 || b.Scale() != 0.5 {
		t.Fatalf("level %d scale %v, want 1 and 0.5", b.Level(), b.Scale())
	}
	// Descent is bounded by MaxLevel.
	for i := 0; i < 20; i++ {
		b.Observe(true)
	}
	if b.Level() != 2 || b.Scale() != 0.25 {
		t.Fatalf("level %d scale %v, want max 2 and 0.25", b.Level(), b.Scale())
	}
	// Recovery steps up one level per full clean window.
	for i := 0; i < 4; i++ {
		b.Observe(false)
	}
	if b.Level() != 1 {
		t.Fatalf("level %d after one clean window, want 1", b.Level())
	}
	for i := 0; i < 4; i++ {
		b.Observe(false)
	}
	if b.Level() != 0 {
		t.Fatalf("level %d after two clean windows, want 0", b.Level())
	}
	if b.Enters() != 2 || b.Exits() != 2 {
		t.Errorf("transition ledger %d/%d, want 2/2", b.Enters(), b.Exits())
	}
}

// TestConfigValidate pins every error path of the bundled controller
// config: each AIMD branch, each brownout branch, and the backlog
// waterline — one table row per distinct rejection.
func TestConfigValidate(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Errorf("rejected defaults: %v", err)
	}
	for _, tc := range []struct {
		name   string
		mutate func(*Config)
		want   string
	}{
		{"NaN AIMD min", func(c *Config) { c.AIMD.Min = math.NaN() }, "AIMD bounds"},
		{"NaN AIMD max", func(c *Config) { c.AIMD.Max = math.NaN() }, "AIMD bounds"},
		{"negative AIMD min", func(c *Config) { c.AIMD.Min = -0.1 }, "AIMD bounds"},
		{"AIMD min above max", func(c *Config) { c.AIMD.Min = 0.9; c.AIMD.Max = 0.2 }, "AIMD bounds"},
		{"AIMD max above 1", func(c *Config) { c.AIMD.Max = 1.5 }, "AIMD bounds"},
		{"NaN AIMD increase", func(c *Config) { c.AIMD.Increase = math.NaN() }, "additive increase"},
		{"negative AIMD increase", func(c *Config) { c.AIMD.Increase = -0.05 }, "additive increase"},
		{"AIMD increase above 1", func(c *Config) { c.AIMD.Increase = 2 }, "additive increase"},
		{"NaN AIMD decrease", func(c *Config) { c.AIMD.Decrease = math.NaN() }, "multiplicative decrease"},
		{"negative AIMD decrease", func(c *Config) { c.AIMD.Decrease = -0.5 }, "multiplicative decrease"},
		{"AIMD decrease at 1", func(c *Config) { c.AIMD.Decrease = 1 }, "multiplicative decrease"},
		{"brownout enter window below 1", func(c *Config) { c.Brownout.EnterAfter = -1 }, "brownout windows"},
		{"brownout exit window below 1", func(c *Config) { c.Brownout.ExitAfter = -1 }, "brownout windows"},
		{"NaN brownout step", func(c *Config) { c.Brownout.Step = math.NaN() }, "brownout step"},
		{"negative brownout step", func(c *Config) { c.Brownout.Step = -0.5 }, "brownout step"},
		{"brownout step at 1", func(c *Config) { c.Brownout.Step = 1 }, "brownout step"},
		{"negative brownout max level", func(c *Config) { c.Brownout.MaxLevel = -1 }, "brownout max level"},
		{"NaN backlog factor", func(c *Config) { c.BacklogFactor = math.NaN() }, "backlog factor"},
		{"backlog factor below 1", func(c *Config) { c.BacklogFactor = 0.5 }, "backlog factor"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var cfg Config
			tc.mutate(&cfg)
			err := cfg.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Validate on %+v: got %v, want mention of %q", cfg, err, tc.want)
			}
		})
	}
}

// TestRetryConfigValidate pins every error path of the client retry
// budget.
func TestRetryConfigValidate(t *testing.T) {
	if err := (RetryConfig{}).Validate(); err != nil {
		t.Errorf("rejected defaults: %v", err)
	}
	for _, tc := range []struct {
		name   string
		mutate func(*RetryConfig)
		want   string
	}{
		{"NaN budget", func(c *RetryConfig) { c.Budget = math.NaN() }, "retry budget"},
		{"negative budget", func(c *RetryConfig) { c.Budget = -1 }, "retry budget"},
		{"backoff base below 1", func(c *RetryConfig) { c.BackoffBase = -1 }, "backoff base"},
		{"backoff cap below base", func(c *RetryConfig) { c.BackoffBase = 8; c.BackoffCap = 2 }, "backoff cap"},
		{"NaN burst", func(c *RetryConfig) { c.Burst = math.NaN() }, "retry burst"},
		{"burst below 1", func(c *RetryConfig) { c.Burst = 0.5 }, "retry burst"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var cfg RetryConfig
			tc.mutate(&cfg)
			err := cfg.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Validate on %+v: got %v, want mention of %q", cfg, err, tc.want)
			}
		})
	}
}
