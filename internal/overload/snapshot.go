package overload

// Snapshot/Restore pairs for the overload state machines. The journal
// plane checkpoints a session or pool by serializing these structs
// (gob) inside its records; a recovered incarnation rebuilds each
// machine from its config — which is deterministic — and then restores
// the snapshot on top. Only mutable state appears here: configs are
// re-derived from the (journaled) session config, never duplicated in
// every delta record.

// RetrySnapshot is the serializable mutable state of a RetryBudget.
type RetrySnapshot struct {
	Tokens          float64
	Allowed, Denied int
}

// Snapshot captures the budget's mutable state.
func (b *RetryBudget) Snapshot() RetrySnapshot {
	return RetrySnapshot{Tokens: b.tokens, Allowed: b.allowed, Denied: b.denied}
}

// Restore overwrites the budget's mutable state from a snapshot.
func (b *RetryBudget) Restore(s RetrySnapshot) {
	b.tokens, b.allowed, b.denied = s.Tokens, s.Allowed, s.Denied
}

// CoDelSnapshot is the serializable mutable state of a CoDel drain.
type CoDelSnapshot struct {
	FirstAbove, DropNext     int
	Draining                 bool
	Count, Episodes, Dropped int
}

// Snapshot captures the drain's mutable state.
func (c *CoDel) Snapshot() CoDelSnapshot {
	return CoDelSnapshot{
		FirstAbove: c.firstAbove,
		DropNext:   c.dropNext,
		Draining:   c.draining,
		Count:      c.count,
		Episodes:   c.episodes,
		Dropped:    c.dropped,
	}
}

// Restore overwrites the drain's mutable state from a snapshot.
func (c *CoDel) Restore(s CoDelSnapshot) {
	c.firstAbove = s.FirstAbove
	c.dropNext = s.DropNext
	c.draining = s.Draining
	c.count = s.Count
	c.episodes = s.Episodes
	c.dropped = s.Dropped
}

// AIMDSnapshot is the serializable mutable state of an AIMD controller.
type AIMDSnapshot struct {
	Fraction             float64
	Increases, Decreases int
}

// Snapshot captures the controller's mutable state.
func (a *AIMD) Snapshot() AIMDSnapshot {
	return AIMDSnapshot{Fraction: a.fraction, Increases: a.increases, Decreases: a.decreases}
}

// Restore overwrites the controller's mutable state from a snapshot.
func (a *AIMD) Restore(s AIMDSnapshot) {
	a.fraction, a.increases, a.decreases = s.Fraction, s.Increases, s.Decreases
}

// BrownoutSnapshot is the serializable mutable state of a Brownout
// machine.
type BrownoutSnapshot struct {
	Level, CongStreak, CleanStreak int
	Enters, Exits                  int
}

// Snapshot captures the machine's mutable state.
func (b *Brownout) Snapshot() BrownoutSnapshot {
	return BrownoutSnapshot{
		Level:       b.level,
		CongStreak:  b.congStreak,
		CleanStreak: b.cleanStreak,
		Enters:      b.enters,
		Exits:       b.exits,
	}
}

// Restore overwrites the machine's mutable state from a snapshot.
func (b *Brownout) Restore(s BrownoutSnapshot) {
	b.level = s.Level
	b.congStreak = s.CongStreak
	b.cleanStreak = s.CleanStreak
	b.enters = s.Enters
	b.exits = s.Exits
}
