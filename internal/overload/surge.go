package overload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"concentrators/internal/seedrand"
	"concentrators/internal/window"
)

// Mode selects the shape of one surge fault.
type Mode int

// The modelled overload shapes.
const (
	// Step multiplies the offered load by Factor for the whole
	// bounded [From, Until) window — a scheduled batch job landing on
	// the fabric. Step faults require a bounded window.
	Step Mode = iota
	// Ramp grows the multiplier linearly from 1 at From to Factor at
	// Until — organic growth outrunning capacity. Ramp faults require
	// a bounded window.
	Ramp
	// Flash spikes: each round inside the window independently
	// multiplies the load by Factor with probability Prob — the
	// flash-crowd shape whose point is that it clears between spikes.
	Flash
	// Sustained multiplies by Factor from From onward (Until ≤ 0 means
	// forever) — persistent oversubscription, the metastable-retry-storm
	// driver.
	Sustained
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Step:
		return "step"
	case Ramp:
		return "ramp"
	case Flash:
		return "flash"
	case Sustained:
		return "sustained"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Fault is one load fault on the surge plane.
type Fault struct {
	// Mode is the overload shape.
	Mode Mode
	// Factor is the peak load multiplier (Step/Sustained always, Ramp
	// at the end of its window, Flash during a spike). Must be a
	// positive finite number: a negative or zero multiplier is not a
	// load.
	Factor float64
	// Prob shapes Flash faults: the per-round spike probability.
	Prob float64
	// From and Until bound the rounds the fault is live: active for
	// From ≤ round < Until; Until ≤ 0 means forever (Sustained and
	// Flash only — Step and Ramp need the bounded window).
	From, Until int
}

// String renders the fault.
func (f Fault) String() string {
	window := fmt.Sprintf(" from round %d", f.From)
	if f.Until > 0 {
		window = fmt.Sprintf(" rounds [%d,%d)", f.From, f.Until)
	}
	switch f.Mode {
	case Step:
		return fmt.Sprintf("step ×%.3g%s", f.Factor, window)
	case Ramp:
		return fmt.Sprintf("ramp 1→×%.3g%s", f.Factor, window)
	case Flash:
		return fmt.Sprintf("flash ×%.3g p=%.3g%s", f.Factor, f.Prob, window)
	case Sustained:
		return fmt.Sprintf("sustained ×%.3g%s", f.Factor, window)
	default:
		return fmt.Sprintf("%s%s", f.Mode, window)
	}
}

// Validate rejects malformed surge faults — in particular negative,
// zero, or non-finite load multipliers.
func (f Fault) Validate() error {
	switch {
	case math.IsNaN(f.Factor) || math.IsInf(f.Factor, 0) || f.Factor <= 0:
		return fmt.Errorf("overload: surge multiplier %v must be a positive finite number in %v", f.Factor, f)
	}
	if err := window.Check(f.From, f.Until); err != nil {
		return fmt.Errorf("overload: %v in %v", err, f)
	}
	switch f.Mode {
	case Step, Ramp:
		if err := window.CheckBounded(f.From, f.Until, fmt.Sprintf("%s fault", f.Mode)); err != nil {
			return fmt.Errorf("overload: %v in %v", err, f)
		}
	case Flash:
		if math.IsNaN(f.Prob) || f.Prob <= 0 || f.Prob > 1 {
			return fmt.Errorf("overload: flash probability %v outside (0,1] in %v", f.Prob, f)
		}
	case Sustained:
	default:
		return fmt.Errorf("overload: unknown surge mode in %v", f)
	}
	return nil
}

// active reports whether the fault is live in the given round.
func (f Fault) active(round int) bool {
	return window.Span{From: f.From, Until: f.Until}.Active(round)
}

// sample draws the fault's multiplier for the given round. rng is only
// consulted for Flash faults, so deterministic shapes stay
// deterministic regardless of fault ordering on the plane.
func (f Fault) sample(round int, rng *rand.Rand) float64 {
	switch f.Mode {
	case Step, Sustained:
		return f.Factor
	case Ramp:
		span := f.Until - f.From
		progress := float64(round-f.From+1) / float64(span)
		return 1 + progress*(f.Factor-1)
	case Flash:
		if rng.Float64() < f.Prob {
			return f.Factor
		}
		return 1
	default:
		return 1
	}
}

// expected returns the fault's mean multiplier for the given round —
// Flash averages over its spike probability instead of sampling.
func (f Fault) expected(round int) float64 {
	if f.Mode == Flash {
		return 1 + f.Prob*(f.Factor-1)
	}
	return f.sample(round, nil)
}

// Plane is a seeded set of surge faults — the load counterpart of
// timing.Plane. Multipliers are deterministic: the value drawn for a
// round depends only on the plane's seed and the round number, never on
// call order, so an overload collapse found in CI replays bit-for-bit
// from its seed. The zero *Plane (nil) means the offered load is
// exactly the configured base load.
type Plane struct {
	seed   int64
	faults []Fault
}

// NewPlane returns an empty surge plane with the given seed.
func NewPlane(seed int64) *Plane {
	return &Plane{seed: seed}
}

// Add validates and inserts a surge fault. Multiple faults may overlap
// in time; their multipliers compound (a ramp can carry flash spikes).
func (p *Plane) Add(f Fault) error {
	if err := f.Validate(); err != nil {
		return err
	}
	p.faults = append(p.faults, f)
	return nil
}

// Len returns the number of faults on the plane.
func (p *Plane) Len() int {
	if p == nil {
		return 0
	}
	return len(p.faults)
}

// Faults lists the faults in deterministic (From, Mode) order.
func (p *Plane) Faults() []Fault {
	if p == nil {
		return nil
	}
	out := append([]Fault(nil), p.faults...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].Mode < out[j].Mode
	})
	return out
}

// Clone returns an independent copy of the plane.
func (p *Plane) Clone() *Plane {
	if p == nil {
		return nil
	}
	return &Plane{seed: p.seed, faults: append([]Fault(nil), p.faults...)}
}

// Seed returns the plane's stream seed (checkpointing needs it to
// rebuild an identical plane after a crash-restart).
func (p *Plane) Seed() int64 {
	if p == nil {
		return 0
	}
	return p.seed
}

// rng derives the deterministic spike source for one (round, fault)
// coordinate.
func (p *Plane) rng(round, idx int) *rand.Rand {
	h := seedrand.Mix64(uint64(p.seed) ^ seedrand.Mix64(uint64(round)<<20|uint64(uint32(idx))))
	return rand.New(rand.NewSource(int64(h)))
}

// Multiplier returns the compound load multiplier for the given round:
// the product over every live fault. A nil plane multiplies by 1.
func (p *Plane) Multiplier(round int) float64 {
	if p == nil {
		return 1
	}
	mult := 1.0
	for i, f := range p.faults {
		if !f.active(round) {
			continue
		}
		mult *= f.sample(round, p.rng(round, i))
	}
	return mult
}

// ExpectedMultiplier returns the mean compound multiplier for the
// round — deterministic shapes exactly, Flash averaged over its spike
// probability. This is what composes with workload.Bursty.ExpectedLoad
// to give the per-round expected k.
func (p *Plane) ExpectedMultiplier(round int) float64 {
	if p == nil {
		return 1
	}
	mult := 1.0
	for _, f := range p.faults {
		if f.active(round) {
			mult *= f.expected(round)
		}
	}
	return mult
}

// Load applies the round's multiplier to a base per-input probability,
// clamped to [0, 1].
func (p *Plane) Load(round int, base float64) float64 {
	l := base * p.Multiplier(round)
	if l > 1 {
		return 1
	}
	if l < 0 || math.IsNaN(l) {
		return 0
	}
	return l
}
