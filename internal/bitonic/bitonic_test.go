package bitonic

import (
	"math/rand"
	"testing"

	"concentrators/internal/bitvec"
	"concentrators/internal/core"
	"concentrators/internal/hyper"
	"concentrators/internal/logic"
	"concentrators/internal/nearsort"
)

var _ core.Concentrator = (*Switch)(nil)

func TestNewNetworkValidation(t *testing.T) {
	for _, n := range []int{0, 1, 3, 12} {
		if _, err := NewNetwork(n); err == nil {
			t.Errorf("NewNetwork(%d) accepted", n)
		}
	}
}

func TestNetworkCounts(t *testing.T) {
	nw, err := NewNetwork(16)
	if err != nil {
		t.Fatal(err)
	}
	// lg n = 4: levels = 4·5/2 = 10, comparators = 16·10/2 = 80.
	if nw.Levels() != 10 {
		t.Errorf("Levels = %d, want 10", nw.Levels())
	}
	if nw.Comparators() != 80 {
		t.Errorf("Comparators = %d, want 80", nw.Comparators())
	}
	if nw.Size() != 16 {
		t.Errorf("Size = %d", nw.Size())
	}
}

// The network must fully sort every 0/1 pattern (hyperconcentrator
// condition) — exhaustive at n = 16.
func TestSortsExhaustive16(t *testing.T) {
	nw, err := NewNetwork(16)
	if err != nil {
		t.Fatal(err)
	}
	for pat := 0; pat < 1<<16; pat++ {
		v := bitvec.New(16)
		for i := 0; i < 16; i++ {
			v.Set(i, pat&(1<<uint(i)) != 0)
		}
		out, err := nw.SortValidBits(v)
		if err != nil {
			t.Fatal(err)
		}
		if !out.IsSorted() || out.Count() != v.Count() {
			t.Fatalf("pattern %04x: output %s not a sorted copy of %s", pat, out, v)
		}
	}
}

func TestSortsRandomLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for _, n := range []int{64, 256, 1024} {
		nw, err := NewNetwork(n)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 30; trial++ {
			v := bitvec.New(n)
			for i := 0; i < n; i++ {
				v.Set(i, rng.Intn(2) == 1)
			}
			out, err := nw.SortValidBits(v)
			if err != nil {
				t.Fatal(err)
			}
			if !out.IsSorted() || out.Count() != v.Count() {
				t.Fatalf("n=%d: not sorted", n)
			}
		}
	}
}

// Route must assign each valid message a distinct position in the
// sorted prefix.
func TestRouteDisjointPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	nw, _ := NewNetwork(64)
	for trial := 0; trial < 50; trial++ {
		v := bitvec.New(64)
		for i := 0; i < 64; i++ {
			v.Set(i, rng.Intn(2) == 1)
		}
		out, err := nw.Route(v)
		if err != nil {
			t.Fatal(err)
		}
		k := v.Count()
		seen := make([]bool, 64)
		for i, o := range out {
			if v.Get(i) {
				if o < 0 || o >= k || seen[o] {
					t.Fatalf("input %d routed to %d (k=%d)", i, o, k)
				}
				seen[o] = true
			} else if o != -1 {
				t.Fatalf("invalid input %d routed", i)
			}
		}
	}
}

func TestSwitchConcentratorContract(t *testing.T) {
	sw, err := NewSwitch(32, 12)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 100; trial++ {
		v := bitvec.New(32)
		for i := 0; i < 32; i++ {
			v.Set(i, rng.Intn(2) == 1)
		}
		out, err := sw.Route(v)
		if err != nil {
			t.Fatal(err)
		}
		if err := nearsort.CheckPartialConcentration(v, out, 12, 0); err != nil {
			t.Fatalf("%s: %v", v, err)
		}
	}
	if _, err := NewSwitch(8, 9); err == nil {
		t.Error("accepted m > n")
	}
}

// The design-choice comparison the paper makes implicitly: the bitonic
// baseline's Θ(lg² n) delay loses to the CL86 chip's 2 lg n, and the
// gap widens with n.
func TestDelayLosesToCL86(t *testing.T) {
	for _, n := range []int{64, 1024, 4096} {
		sw, err := NewSwitch(n, n)
		if err != nil {
			t.Fatal(err)
		}
		cl := hyper.GateDelays(n) + hyper.PadDelays
		if sw.GateDelays() <= cl {
			t.Errorf("n=%d: bitonic %d should exceed CL86 %d", n, sw.GateDelays(), cl)
		}
	}
	// The gap grows: delays ratio at 4096 exceeds ratio at 64.
	s64, _ := NewSwitch(64, 64)
	s4096, _ := NewSwitch(4096, 4096)
	r64 := float64(s64.GateDelays()) / float64(hyper.GateDelays(64)+hyper.PadDelays)
	r4096 := float64(s4096.GateDelays()) / float64(hyper.GateDelays(4096)+hyper.PadDelays)
	if r4096 <= r64 {
		t.Errorf("delay gap should widen: %f vs %f", r64, r4096)
	}
}

func TestNetlistMatchesFunctional(t *testing.T) {
	n := 8
	net, nw, err := BuildNetlist(n)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(84))
	for pat := 0; pat < 1<<uint(n); pat++ {
		v := bitvec.New(n)
		in := make([]bool, 2*n)
		payload := make([]bool, n)
		for i := 0; i < n; i++ {
			b := pat&(1<<uint(i)) != 0
			v.Set(i, b)
			in[i] = b
			payload[i] = rng.Intn(2) == 1
			in[n+i] = payload[i]
		}
		out := net.Eval(in)
		route, err := nw.Route(v)
		if err != nil {
			t.Fatal(err)
		}
		k := v.Count()
		for o := 0; o < n; o++ {
			if out[2*o] != (o < k) {
				t.Fatalf("pattern %02x: output %d valid wrong", pat, o)
			}
		}
		for i := 0; i < n; i++ {
			if route[i] >= 0 && out[2*route[i]+1] != payload[i] {
				t.Fatalf("pattern %02x: payload of input %d corrupted", pat, i)
			}
		}
	}
}

func TestEmitNetlistValidation(t *testing.T) {
	nw, _ := NewNetwork(8)
	net := logic.New()
	v := net.Inputs("v", 4)
	if _, _, err := nw.EmitNetlist(net, v, v); err == nil {
		t.Error("accepted arity mismatch")
	}
}
