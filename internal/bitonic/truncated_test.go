package bitonic

import (
	"testing"

	"concentrators/internal/bitvec"
	"concentrators/internal/core"
	"concentrators/internal/nearsort"
)

var _ core.Concentrator = (*TruncatedSwitch)(nil)

func TestTruncatedValidation(t *testing.T) {
	nw, _ := NewNetwork(16)
	if _, err := nw.Truncated(-1); err == nil {
		t.Error("accepted negative levels")
	}
	if _, err := nw.Truncated(nw.Levels() + 1); err == nil {
		t.Error("accepted levels beyond the network")
	}
}

func TestTruncatedLevels(t *testing.T) {
	nw, _ := NewNetwork(16)
	tr, err := nw.Truncated(3)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Levels() != 3 {
		t.Errorf("Levels = %d, want 3", tr.Levels())
	}
	for _, c := range tr.comps {
		if c.Level >= 3 {
			t.Fatalf("comparator at level %d survived truncation to 3", c.Level)
		}
	}
	// Truncating to the full depth reproduces the whole network.
	full, err := nw.Truncated(nw.Levels())
	if err != nil {
		t.Fatal(err)
	}
	if full.Comparators() != nw.Comparators() {
		t.Error("full truncation lost comparators")
	}
}

// ε decreases monotonically with retained levels, reaching 0 at full
// depth (a sorted output) and n−1-ish at zero levels.
func TestEpsilonMonotoneInLevels(t *testing.T) {
	nw, _ := NewNetwork(16)
	prev := 16
	for lv := 0; lv <= nw.Levels(); lv++ {
		tr, err := nw.Truncated(lv)
		if err != nil {
			t.Fatal(err)
		}
		eps, err := tr.WorstEpsilonExhaustive()
		if err != nil {
			t.Fatal(err)
		}
		if eps > prev {
			t.Errorf("ε increased from %d to %d at level %d", prev, eps, lv)
		}
		prev = eps
		if lv == 0 && eps < 8 {
			t.Errorf("zero levels should leave large ε, got %d", eps)
		}
		if lv == nw.Levels() && eps != 0 {
			t.Errorf("full network ε = %d, want 0", eps)
		}
	}
}

func TestWorstEpsilonLimits(t *testing.T) {
	big, _ := NewNetwork(32)
	if _, err := big.WorstEpsilonExhaustive(); err == nil {
		t.Error("accepted n > 24")
	}
}

// Lemma 2 applied to the truncated network: the switch must satisfy
// partial concentration at its EXACT ε for every pattern.
func TestTruncatedSwitchLemma2Exhaustive(t *testing.T) {
	n, m := 16, 10
	for _, levels := range []int{2, 4, 6, 8} {
		sw, err := NewTruncatedSwitch(n, m, levels)
		if err != nil {
			t.Fatal(err)
		}
		eps := sw.EpsilonBound()
		tight := false
		for pat := 0; pat < 1<<uint(n); pat++ {
			v := bitvec.New(n)
			for i := 0; i < n; i++ {
				v.Set(i, pat&(1<<uint(i)) != 0)
			}
			out, err := sw.Route(v)
			if err != nil {
				t.Fatal(err)
			}
			if err := nearsort.CheckPartialConcentration(v, out, m, eps); err != nil {
				t.Fatalf("levels=%d pattern %04x: %v", levels, pat, err)
			}
			// Tightness of the exact ε: some pattern must realize it.
			full, err := sw.nw.SortValidBits(v)
			if err != nil {
				t.Fatal(err)
			}
			if full.Nearsortedness() == eps {
				tight = true
			}
		}
		if !tight {
			t.Errorf("levels=%d: ε = %d never realized; not exact", levels, eps)
		}
	}
}

func TestTruncatedSwitchValidation(t *testing.T) {
	if _, err := NewTruncatedSwitch(16, 0, 2); err == nil {
		t.Error("accepted m = 0")
	}
	if _, err := NewTruncatedSwitch(12, 4, 2); err == nil {
		t.Error("accepted non-power-of-two n")
	}
	if _, err := NewTruncatedSwitch(16, 4, 99); err == nil {
		t.Error("accepted too many levels")
	}
}

func TestTruncatedSwitchAccessors(t *testing.T) {
	sw, err := NewTruncatedSwitch(16, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if sw.Inputs() != 16 || sw.Outputs() != 8 || sw.Levels() != 4 {
		t.Error("accessors wrong")
	}
	if sw.GateDelays() != 4*ComparatorDelay {
		t.Error("delay wrong")
	}
	if sw.Name() == "" || sw.ChipCount() != 1 || sw.ChipsTraversed() != 1 || sw.DataPinsPerChip() != 24 {
		t.Error("cost accessors wrong")
	}
}
