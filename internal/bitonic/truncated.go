package bitonic

import (
	"fmt"

	"concentrators/internal/bitvec"
)

// Truncated returns a copy of the network containing only its first
// `levels` comparator stages. A truncated sorting network no longer
// sorts — it ε-NEARSORTS for some ε, which makes it raw material for
// the paper's key lemma and a direct answer to its closing question:
// "There may be ε-nearsorters based on networks other than the
// two-dimensional mesh to which we can apply Lemma 2."
func (nw *Network) Truncated(levels int) (*Network, error) {
	if levels < 0 || levels > nw.levels {
		return nil, fmt.Errorf("bitonic: truncation to %d levels out of [0,%d]", levels, nw.levels)
	}
	t := &Network{n: nw.n, levels: levels}
	for _, c := range nw.comps {
		if c.Level < levels {
			t.comps = append(t.comps, c)
		}
	}
	return t, nil
}

// WorstEpsilonExhaustive computes the exact worst-case nearsortedness
// of the network's valid-bit rearrangement over ALL 2^n patterns.
// Requires n ≤ 24.
func (nw *Network) WorstEpsilonExhaustive() (int, error) {
	if nw.n > 24 {
		return 0, fmt.Errorf("bitonic: exhaustive ε infeasible for n = %d", nw.n)
	}
	worst := 0
	for pat := 0; pat < 1<<uint(nw.n); pat++ {
		v := bitvec.New(nw.n)
		for i := 0; i < nw.n; i++ {
			v.Set(i, pat&(1<<uint(i)) != 0)
		}
		out, err := nw.SortValidBits(v)
		if err != nil {
			return 0, err
		}
		if e := out.Nearsortedness(); e > worst {
			worst = e
		}
	}
	return worst, nil
}

// TruncatedSwitch is an (n, m, 1−ε/m) partial concentrator obtained by
// applying Lemma 2 to a truncated bitonic network, with ε computed
// EXACTLY (exhaustively) at construction — a new switch family in the
// design space the paper opens.
type TruncatedSwitch struct {
	nw  *Network
	m   int
	eps int
}

// NewTruncatedSwitch builds the switch; n ≤ 24 (exact ε is computed
// exhaustively), power of two.
func NewTruncatedSwitch(n, m, levels int) (*TruncatedSwitch, error) {
	if m < 1 || m > n {
		return nil, fmt.Errorf("bitonic: invalid m = %d for n = %d", m, n)
	}
	full, err := NewNetwork(n)
	if err != nil {
		return nil, err
	}
	nw, err := full.Truncated(levels)
	if err != nil {
		return nil, err
	}
	eps, err := nw.WorstEpsilonExhaustive()
	if err != nil {
		return nil, err
	}
	return &TruncatedSwitch{nw: nw, m: m, eps: eps}, nil
}

// Name implements core.Concentrator.
func (s *TruncatedSwitch) Name() string {
	return fmt.Sprintf("truncated-bitonic (%d levels)", s.nw.levels)
}

// Inputs implements core.Concentrator.
func (s *TruncatedSwitch) Inputs() int { return s.nw.n }

// Outputs implements core.Concentrator.
func (s *TruncatedSwitch) Outputs() int { return s.m }

// Levels returns the retained comparator stages.
func (s *TruncatedSwitch) Levels() int { return s.nw.levels }

// Route implements core.Concentrator.
func (s *TruncatedSwitch) Route(valid *bitvec.Vector) ([]int, error) {
	out, err := s.nw.Route(valid)
	if err != nil {
		return nil, err
	}
	for i := range out {
		if out[i] >= s.m {
			out[i] = -1
		}
	}
	return out, nil
}

// EpsilonBound implements core.Concentrator: the EXACT worst-case ε of
// the truncated network (not an asymptotic bound).
func (s *TruncatedSwitch) EpsilonBound() int { return s.eps }

// GateDelays implements core.Concentrator.
func (s *TruncatedSwitch) GateDelays() int { return s.nw.levels * ComparatorDelay }

// ChipsTraversed implements core.Concentrator.
func (s *TruncatedSwitch) ChipsTraversed() int { return 1 }

// ChipCount implements core.Concentrator.
func (s *TruncatedSwitch) ChipCount() int { return 1 }

// DataPinsPerChip implements core.Concentrator.
func (s *TruncatedSwitch) DataPinsPerChip() int { return s.nw.n + s.m }
