// Package bitonic implements Batcher's bitonic sorting network as a
// baseline concentrator. A comparator network that sorts the valid bits
// (nonincreasing) IS a hyperconcentrator — this was the obvious
// pre-CL86 way to build one — but it needs Θ(n lg² n) comparators and
// Θ(lg² n) gate delays, against the CL86 chip's Θ(n²) area and 2 lg n
// delays. The library includes it to make the paper's implicit design
// choice ("use the CL86 hyperconcentrator as the building block")
// quantitative.
//
// Both a functional switch (implementing core.Concentrator) and a
// gate-level netlist are provided. On 0/1 keys a comparator is just an
// OR/AND pair for the valid bits plus muxes for the payload.
package bitonic

import (
	"fmt"

	"concentrators/internal/bitvec"
	"concentrators/internal/logic"
)

// Comparator is one compare-exchange element: positions A and B with
// the larger key (valid bit) routed to A.
type Comparator struct {
	A, B int
	// Level is the parallel stage index the comparator executes in.
	Level int
}

// Network is a bitonic sorting network for n = 2^q wires, sorting
// valid bits into nonincreasing order.
type Network struct {
	n      int
	comps  []Comparator
	levels int
}

// NewNetwork constructs the network. n must be a power of two ≥ 2.
func NewNetwork(n int) (*Network, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("bitonic: size %d must be a power of two ≥ 2", n)
	}
	nw := &Network{n: n}
	// Standard iterative bitonic sort; "ascending" blocks re-oriented
	// so the global result is nonincreasing (max first).
	level := 0
	for k := 2; k <= n; k <<= 1 {
		for j := k >> 1; j > 0; j >>= 1 {
			for i := 0; i < n; i++ {
				l := i ^ j
				if l <= i {
					continue
				}
				// In the classical ascending network, block bit (i&k)
				// decides direction; invert for nonincreasing output.
				if i&k == 0 {
					nw.comps = append(nw.comps, Comparator{A: i, B: l, Level: level})
				} else {
					nw.comps = append(nw.comps, Comparator{A: l, B: i, Level: level})
				}
			}
			level++
		}
	}
	nw.levels = level
	return nw, nil
}

// Size returns n.
func (nw *Network) Size() int { return nw.n }

// Comparators returns the comparator count: n·lg n·(lg n+1)/4.
func (nw *Network) Comparators() int { return len(nw.comps) }

// Levels returns the number of parallel comparator stages:
// lg n·(lg n+1)/2.
func (nw *Network) Levels() int { return nw.levels }

// SortValidBits returns the network's rearrangement of the valid bits
// (nonincreasing — the hyperconcentrator condition).
func (nw *Network) SortValidBits(valid *bitvec.Vector) (*bitvec.Vector, error) {
	route, err := nw.Route(valid)
	if err != nil {
		return nil, err
	}
	out := bitvec.New(nw.n)
	for _, o := range route {
		if o >= 0 {
			out.Set(o, true)
		}
	}
	return out, nil
}

// Route tracks each valid input through the comparator network:
// out[i] = final position of input i's message, or −1 for invalid
// inputs. A comparator moves a lone valid message to its max side and
// leaves two-valid / two-invalid pairs in place (a consistent tie
// rule; comparators on equal keys are identities).
func (nw *Network) Route(valid *bitvec.Vector) ([]int, error) {
	if valid.Len() != nw.n {
		return nil, fmt.Errorf("bitonic: %d valid bits on a %d-wire network", valid.Len(), nw.n)
	}
	cell := make([]int, nw.n) // message id or −1
	for i := range cell {
		if valid.Get(i) {
			cell[i] = i
		} else {
			cell[i] = -1
		}
	}
	for _, c := range nw.comps {
		if cell[c.A] == -1 && cell[c.B] != -1 {
			cell[c.A], cell[c.B] = cell[c.B], -1
		}
	}
	out := make([]int, nw.n)
	for i := range out {
		out[i] = -1
	}
	for pos, id := range cell {
		if id >= 0 {
			out[id] = pos
		}
	}
	return out, nil
}

// --- core.Concentrator adapter ------------------------------------------------

// Switch is an n-by-m concentrator built from the bitonic network
// (first m outputs), satisfying core.Concentrator.
type Switch struct {
	nw *Network
	m  int
}

// NewSwitch builds the n-by-m bitonic concentrator switch.
func NewSwitch(n, m int) (*Switch, error) {
	if m < 1 || m > n {
		return nil, fmt.Errorf("bitonic: invalid m = %d for n = %d", m, n)
	}
	nw, err := NewNetwork(n)
	if err != nil {
		return nil, err
	}
	return &Switch{nw: nw, m: m}, nil
}

// Name implements core.Concentrator.
func (s *Switch) Name() string { return "bitonic (baseline)" }

// Inputs implements core.Concentrator.
func (s *Switch) Inputs() int { return s.nw.n }

// Outputs implements core.Concentrator.
func (s *Switch) Outputs() int { return s.m }

// Route implements core.Concentrator.
func (s *Switch) Route(valid *bitvec.Vector) ([]int, error) {
	out, err := s.nw.Route(valid)
	if err != nil {
		return nil, err
	}
	for i := range out {
		if out[i] >= s.m {
			out[i] = -1
		}
	}
	return out, nil
}

// EpsilonBound implements core.Concentrator: a sorting network fully
// sorts, ε = 0.
func (s *Switch) EpsilonBound() int { return 0 }

// ComparatorDelay is the gate delay charged per comparator level
// (OR/AND for the key plus a mux for the payload, evaluated in
// parallel: 2 gate levels).
const ComparatorDelay = 2

// GateDelays implements core.Concentrator: levels × per-level delay —
// Θ(lg² n) against the CL86 chip's 2 lg n.
func (s *Switch) GateDelays() int { return s.nw.levels * ComparatorDelay }

// ChipsTraversed implements core.Concentrator.
func (s *Switch) ChipsTraversed() int { return 1 }

// ChipCount implements core.Concentrator.
func (s *Switch) ChipCount() int { return 1 }

// DataPinsPerChip implements core.Concentrator.
func (s *Switch) DataPinsPerChip() int { return s.nw.n + s.m }

// --- netlist ---------------------------------------------------------------------

// EmitNetlist appends the comparator network's datapath to net: valid
// bits and payload bits in, sorted valid bits and routed payloads out.
// Each comparator is OR/AND on the valid bits and a crossing mux on the
// payloads.
func (nw *Network) EmitNetlist(net *logic.Net, valid, payload []logic.Signal) (outValid, outPayload []logic.Signal, err error) {
	if len(valid) != nw.n || len(payload) != nw.n {
		return nil, nil, fmt.Errorf("bitonic: emit arity mismatch (%d/%d vs %d)", len(valid), len(payload), nw.n)
	}
	v := append([]logic.Signal(nil), valid...)
	p := append([]logic.Signal(nil), payload...)
	for _, c := range nw.comps {
		va, vb := v[c.A], v[c.B]
		pa, pb := p[c.A], p[c.B]
		// Cross exactly when only B carries a message.
		cross := net.And(net.Not(va), vb)
		v[c.A] = net.Or(va, vb)
		v[c.B] = net.And(va, vb)
		p[c.A] = net.Mux(cross, pb, pa)
		p[c.B] = net.Mux(cross, pa, pb)
	}
	return v, p, nil
}

// BuildNetlist emits a standalone netlist with inputs
// valid.0..{n−1}, data.0..{n−1} and interleaved (valid, data) outputs.
func BuildNetlist(n int) (*logic.Net, *Network, error) {
	nw, err := NewNetwork(n)
	if err != nil {
		return nil, nil, err
	}
	net := logic.New()
	valid := make([]logic.Signal, n)
	for i := range valid {
		valid[i] = net.Input(fmt.Sprintf("valid.%d", i))
	}
	payload := make([]logic.Signal, n)
	for i := range payload {
		payload[i] = net.Input(fmt.Sprintf("data.%d", i))
	}
	ov, op, err := nw.EmitNetlist(net, valid, payload)
	if err != nil {
		return nil, nil, err
	}
	for i := 0; i < n; i++ {
		net.MarkOutput(fmt.Sprintf("valid.%d", i), ov[i])
		net.MarkOutput(fmt.Sprintf("data.%d", i), op[i])
	}
	return net, nw, nil
}
