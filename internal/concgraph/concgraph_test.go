package concgraph

import (
	"math/rand"
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 3); err == nil {
		t.Error("accepted n = 0")
	}
	if _, err := New(3, 0); err == nil {
		t.Error("accepted m = 0")
	}
}

func TestAddEdge(t *testing.T) {
	g, _ := New(3, 3)
	if err := g.AddEdge(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(0, 0); err != nil {
		t.Fatal(err) // duplicate is a no-op
	}
	if g.EdgeCount() != 1 {
		t.Errorf("EdgeCount = %d, want 1 (duplicate ignored)", g.EdgeCount())
	}
	if err := g.AddEdge(3, 0); err == nil {
		t.Error("accepted out-of-range input")
	}
	if err := g.AddEdge(0, 3); err == nil {
		t.Error("accepted out-of-range output")
	}
}

func TestCompleteGraphCapacity(t *testing.T) {
	g, err := Complete(6, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.EdgeCount() != 24 || g.MaxDegree() != 4 {
		t.Errorf("edges=%d degree=%d", g.EdgeCount(), g.MaxDegree())
	}
	c, err := g.ExactCapacity()
	if err != nil {
		t.Fatal(err)
	}
	if c != 4 {
		t.Errorf("K_{6,4} capacity = %d, want m = 4", c)
	}
}

func TestEdgelessCapacityZero(t *testing.T) {
	g, _ := New(4, 4)
	c, err := g.ExactCapacity()
	if err != nil {
		t.Fatal(err)
	}
	if c != 0 {
		t.Errorf("edgeless capacity = %d, want 0", c)
	}
}

func TestHandBuiltCapacity(t *testing.T) {
	// Inputs 0,1,2 all adjacent only to output 0: {0,1} is deficient →
	// capacity 1.
	g, _ := New(3, 2)
	for i := 0; i < 3; i++ {
		if err := g.AddEdge(i, 0); err != nil {
			t.Fatal(err)
		}
	}
	c, err := g.ExactCapacity()
	if err != nil {
		t.Fatal(err)
	}
	if c != 1 {
		t.Errorf("capacity = %d, want 1", c)
	}
	// Add edge 2→1: now {0,1} still deficient (both see only {0}).
	g.AddEdge(2, 1)
	if c, _ = g.ExactCapacity(); c != 1 {
		t.Errorf("capacity = %d, want 1", c)
	}
	// Add 1→1: smallest deficient set is now size 3 ({0,1,2} has
	// |N| = 2): capacity 2 = m.
	g.AddEdge(1, 1)
	if c, _ = g.ExactCapacity(); c != 2 {
		t.Errorf("capacity = %d, want 2", c)
	}
}

func TestExactCapacityLimits(t *testing.T) {
	g, _ := New(25, 4)
	if _, err := g.ExactCapacity(); err == nil {
		t.Error("accepted n > 24")
	}
	g2, _ := New(4, 65)
	if _, err := g2.ExactCapacity(); err == nil {
		t.Error("accepted m > 64")
	}
}

func TestSaturatesSubsetMatchesHall(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 30; trial++ {
		n, m := 6, 5
		g, _ := New(n, m)
		for i := 0; i < n; i++ {
			for o := 0; o < m; o++ {
				if rng.Intn(3) == 0 {
					g.AddEdge(i, o)
				}
			}
		}
		cap1, err := g.ExactCapacity()
		if err != nil {
			t.Fatal(err)
		}
		// Every subset of size ≤ cap1 must saturate; find a deficient
		// one of size cap1+1 if cap1 < n.
		for mask := 1; mask < 1<<uint(n); mask++ {
			var subset []int
			for i := 0; i < n; i++ {
				if mask&(1<<uint(i)) != 0 {
					subset = append(subset, i)
				}
			}
			ok, err := g.SaturatesSubset(subset)
			if err != nil {
				t.Fatal(err)
			}
			if len(subset) <= cap1 && !ok {
				t.Fatalf("capacity %d but subset %v of size %d unsaturated", cap1, subset, len(subset))
			}
		}
	}
}

func TestRandomRegularValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	if _, err := RandomRegular(4, 4, 0, rng); err == nil {
		t.Error("accepted degree 0")
	}
	if _, err := RandomRegular(4, 4, 5, rng); err == nil {
		t.Error("accepted degree > m")
	}
	g, err := RandomRegular(8, 6, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.EdgeCount() != 24 || g.MaxDegree() != 3 {
		t.Errorf("edges=%d degree=%d", g.EdgeCount(), g.MaxDegree())
	}
}

// Pinsker's phenomenon, empirically: degree-1 random graphs have tiny
// capacity, degree-4 ones are near-perfect concentrators.
func TestPinskerPhenomenon(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	n, m := 16, 8
	avgCap := func(d int) float64 {
		total := 0
		const trials = 20
		for trial := 0; trial < trials; trial++ {
			g, err := RandomRegular(n, m, d, rng)
			if err != nil {
				t.Fatal(err)
			}
			c, err := g.ExactCapacity()
			if err != nil {
				t.Fatal(err)
			}
			total += c
		}
		return float64(total) / trials
	}
	c1, c4 := avgCap(1), avgCap(4)
	if c1 >= c4 {
		t.Errorf("degree 1 capacity %.2f should be far below degree 4's %.2f", c1, c4)
	}
	if c4 < 6 {
		t.Errorf("degree-4 random graphs should be near-perfect (avg %.2f of max %d)", c4, m)
	}
	if c1 > 3 {
		t.Errorf("degree-1 random graphs should have small capacity (avg %.2f)", c1)
	}
}

func TestSampledFailureSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	// A graph with an obvious deficiency: 3 inputs sharing one output.
	g, _ := New(10, 10)
	for i := 0; i < 10; i++ {
		g.AddEdge(i, 0)
	}
	size, err := g.SampledCapacityLowerBoundFailure(rng, 50)
	if err != nil {
		t.Fatal(err)
	}
	if size != 2 {
		t.Errorf("smallest deficient subset found = %d, want 2", size)
	}
	// The complete graph yields no failure.
	k, _ := Complete(8, 8)
	size, err = k.SampledCapacityLowerBoundFailure(rng, 20)
	if err != nil {
		t.Fatal(err)
	}
	if size != 0 {
		t.Errorf("complete graph reported deficiency of size %d", size)
	}
}
