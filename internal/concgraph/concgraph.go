// Package concgraph implements concentrators as GRAPHS — the original
// setting the paper's §2 cites (Pinsker 1973, Pippenger 1977, Valiant
// 1976): a bipartite graph with n inputs and m outputs is an
// (n, m, c)-concentrator when every set of k ≤ c inputs has k
// vertex-disjoint edges to outputs (a matching saturating it).
//
// Graph concentrators prove EXISTENCE with only O(n) edges — far fewer
// than any switch here uses — but they are non-constructive and give no
// routing algorithm, let alone a combinational one; connecting them to
// the paper's switches quantifies what the constructive designs pay
// for being buildable and self-routing (experiment X9).
package concgraph

import (
	"fmt"
	"math/bits"
	"math/rand"

	"concentrators/internal/flow"
)

// Graph is a bipartite graph from n inputs to m outputs.
type Graph struct {
	n, m int
	adj  [][]int // adj[input] = sorted-ish list of outputs
}

// New returns an edgeless bipartite graph.
func New(n, m int) (*Graph, error) {
	if n < 1 || m < 1 {
		return nil, fmt.Errorf("concgraph: invalid dimensions %d×%d", n, m)
	}
	return &Graph{n: n, m: m, adj: make([][]int, n)}, nil
}

// Inputs returns n.
func (g *Graph) Inputs() int { return g.n }

// Outputs returns m.
func (g *Graph) Outputs() int { return g.m }

// AddEdge connects input i to output o (duplicates are ignored).
func (g *Graph) AddEdge(i, o int) error {
	if i < 0 || i >= g.n || o < 0 || o >= g.m {
		return fmt.Errorf("concgraph: edge (%d,%d) out of range %d×%d", i, o, g.n, g.m)
	}
	for _, x := range g.adj[i] {
		if x == o {
			return nil
		}
	}
	g.adj[i] = append(g.adj[i], o)
	return nil
}

// EdgeCount returns the number of edges.
func (g *Graph) EdgeCount() int {
	c := 0
	for _, a := range g.adj {
		c += len(a)
	}
	return c
}

// MaxDegree returns the largest input degree.
func (g *Graph) MaxDegree() int {
	d := 0
	for _, a := range g.adj {
		if len(a) > d {
			d = len(a)
		}
	}
	return d
}

// SaturatesSubset reports whether the given input subset has a matching
// saturating it (computed by maximum bipartite matching).
func (g *Graph) SaturatesSubset(subset []int) (bool, error) {
	var pairs [][2]int
	for li, i := range subset {
		if i < 0 || i >= g.n {
			return false, fmt.Errorf("concgraph: input %d out of range", i)
		}
		for _, o := range g.adj[i] {
			pairs = append(pairs, [2]int{li, o})
		}
	}
	return flow.MaxBipartiteMatching(len(subset), g.m, pairs) == len(subset), nil
}

// ExactCapacity returns the largest c such that g is an
// (n, m, c)-concentrator, computed exactly by Hall's condition over all
// input subsets. It requires n ≤ 24 and m ≤ 64.
func (g *Graph) ExactCapacity() (int, error) {
	if g.n > 24 {
		return 0, fmt.Errorf("concgraph: exact capacity infeasible for n = %d (> 24)", g.n)
	}
	if g.m > 64 {
		return 0, fmt.Errorf("concgraph: exact capacity needs m ≤ 64, got %d", g.m)
	}
	nb := make([]uint64, g.n)
	for i, a := range g.adj {
		for _, o := range a {
			nb[i] |= 1 << uint(o)
		}
	}
	// Hall: g is a c-concentrator iff no subset S with |S| ≤ c has
	// |N(S)| < |S|. The capacity is (size of the smallest deficient
	// subset) − 1, or n if none exists.
	minDeficient := g.n + 1
	for mask := 1; mask < 1<<uint(g.n); mask++ {
		size := bits.OnesCount(uint(mask))
		if size >= minDeficient {
			continue
		}
		var nbh uint64
		rest := mask
		for rest != 0 {
			i := bits.TrailingZeros(uint(rest))
			rest &^= 1 << uint(i)
			nbh |= nb[i]
		}
		if bits.OnesCount64(nbh) < size {
			minDeficient = size
		}
	}
	if minDeficient > g.n {
		return g.n, nil
	}
	return minDeficient - 1, nil
}

// SampledCapacityLowerBoundFailure searches for a small deficient
// subset by random sampling plus a greedy contraction heuristic and
// returns the size of the smallest deficient subset found (or 0 if none
// was found in the budget — evidence, not proof, that the capacity is
// high). Use for graphs too large for ExactCapacity.
func (g *Graph) SampledCapacityLowerBoundFailure(rng *rand.Rand, samplesPerSize int) (int, error) {
	for size := 1; size <= g.n && size <= g.m+1; size++ {
		for trial := 0; trial < samplesPerSize; trial++ {
			subset := rng.Perm(g.n)[:size]
			ok, err := g.SaturatesSubset(subset)
			if err != nil {
				return 0, err
			}
			if !ok {
				return size, nil
			}
		}
	}
	return 0, nil
}

// RandomRegular builds a random bipartite graph where every input picks
// d distinct random outputs — the Pinsker-style probabilistic
// construction. (Pinsker: such graphs are good concentrators with high
// probability for constant d.)
func RandomRegular(n, m, d int, rng *rand.Rand) (*Graph, error) {
	if d < 1 || d > m {
		return nil, fmt.Errorf("concgraph: degree %d out of range [1,%d]", d, m)
	}
	g, err := New(n, m)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		for _, o := range rng.Perm(m)[:d] {
			if err := g.AddEdge(i, o); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}

// Complete builds the complete bipartite graph K_{n,m}: the trivial
// (n, m, m)-concentrator with n·m edges — what a full crossbar
// realizes.
func Complete(n, m int) (*Graph, error) {
	g, err := New(n, m)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		for o := 0; o < m; o++ {
			if err := g.AddEdge(i, o); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}
