package link

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, crc := range []CRC{CRCNone, CRC8, CRC16} {
		for _, bits := range []int{1, 7, 8, 32, 100} {
			payload := make([]byte, bits)
			for i := range payload {
				payload[i] = byte(rng.Intn(2))
			}
			for _, seq := range []int{0, 1, 127, 255, 300} {
				frame := EncodeFrame(crc, seq, payload)
				if len(frame) != FrameOverhead(crc)+bits {
					t.Fatalf("%s: frame %d bits, want %d", crc, len(frame), FrameOverhead(crc)+bits)
				}
				gotSeq, gotPayload, ok, err := DecodeFrame(crc, frame)
				if err != nil || !ok {
					t.Fatalf("%s seq %d: clean frame rejected (ok=%v err=%v)", crc, seq, ok, err)
				}
				if gotSeq != seq%SeqSpace {
					t.Fatalf("%s: seq %d decoded as %d", crc, seq, gotSeq)
				}
				if !bytes.Equal(gotPayload, payload) {
					t.Fatalf("%s seq %d: payload mangled", crc, seq)
				}
			}
		}
	}
}

func TestDecodeFrameTooShort(t *testing.T) {
	for _, crc := range []CRC{CRCNone, CRC8, CRC16} {
		short := make([]byte, FrameOverhead(crc)-1)
		if _, _, _, err := DecodeFrame(crc, short); err == nil {
			t.Errorf("%s: %d-bit runt accepted", crc, len(short))
		}
	}
}

// A corrupted frame with CRCNone sails through — the baseline that
// motivates the checksum.
func TestCRCNoneDetectsNothing(t *testing.T) {
	payload := []byte{1, 0, 1, 1, 0, 0, 1, 0}
	frame := EncodeFrame(CRCNone, 3, payload)
	frame[SeqBits] ^= 1 // flip the first payload bit
	_, got, ok, err := DecodeFrame(CRCNone, frame)
	if err != nil || !ok {
		t.Fatalf("CRCNone flagged a frame (ok=%v err=%v)", ok, err)
	}
	if bytes.Equal(got, payload) {
		t.Fatal("flip did not land")
	}
}
