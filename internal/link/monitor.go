package link

import (
	"fmt"
	"sort"
)

// MonitorConfig tunes the per-link corruption-rate tracker.
type MonitorConfig struct {
	// Alpha is the EWMA smoothing factor in (0,1]: the weight of the
	// newest observation. 0 means the default (0.25).
	Alpha float64
	// Threshold is the EWMA corruption rate at which a link becomes
	// suspect and is escalated into the health plane's BIST-scan →
	// quarantine path. 0 means the default (0.3).
	Threshold float64
	// MinFrames is the number of frames a link must have carried before
	// it can be escalated — a single corrupted frame on a cold link is
	// noise, not a diagnosis. 0 means the default (8).
	MinFrames int
}

func (c MonitorConfig) withDefaults() (MonitorConfig, error) {
	if c.Alpha == 0 {
		c.Alpha = 0.25
	}
	if c.Threshold == 0 {
		c.Threshold = 0.3
	}
	if c.MinFrames == 0 {
		c.MinFrames = 8
	}
	switch {
	case c.Alpha != c.Alpha || c.Alpha < 0 || c.Alpha > 1:
		return c, fmt.Errorf("link: monitor alpha %v outside (0,1]", c.Alpha)
	case c.Threshold != c.Threshold || c.Threshold < 0 || c.Threshold > 1:
		return c, fmt.Errorf("link: monitor threshold %v outside (0,1]", c.Threshold)
	case c.MinFrames < 0:
		return c, fmt.Errorf("link: negative monitor MinFrames %d", c.MinFrames)
	}
	return c, nil
}

// LinkHealth is one link's observed corruption history.
type LinkHealth struct {
	// Frames and Corrupted count observations (a frame is corrupted
	// when its checksum failed or it was erased on the wire).
	Frames, Corrupted int
	// EWMA is the exponentially weighted corruption rate.
	EWMA float64
	// Escalated reports that the link has been handed to the health
	// plane (scan + quarantine); it is no longer observed.
	Escalated bool
}

// LinkMonitor tracks per-(stage, wire) corruption rates on the
// receiver side and surfaces the links whose EWMA crossed the
// escalation threshold. It is the wire-level analogue of the pool's
// consecutive-violation breaker: where the breaker reacts to contract
// violations, the monitor reacts to checksum failures.
type LinkMonitor struct {
	cfg   MonitorConfig
	links map[LinkAddr]*LinkHealth
}

// NewLinkMonitor builds a monitor; zero cfg fields take defaults.
func NewLinkMonitor(cfg MonitorConfig) (*LinkMonitor, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &LinkMonitor{cfg: cfg, links: make(map[LinkAddr]*LinkHealth)}, nil
}

// Config returns the effective (defaulted) configuration.
func (m *LinkMonitor) Config() MonitorConfig { return m.cfg }

// Observe records one frame crossing the link and whether it arrived
// corrupted (checksum failure or erasure). Observations on an
// escalated link are ignored — it is out of service.
func (m *LinkMonitor) Observe(at LinkAddr, corrupted bool) {
	lh := m.links[at]
	if lh == nil {
		lh = &LinkHealth{}
		m.links[at] = lh
	}
	if lh.Escalated {
		return
	}
	lh.Frames++
	x := 0.0
	if corrupted {
		lh.Corrupted++
		x = 1.0
	}
	if lh.Frames == 1 {
		lh.EWMA = x
	} else {
		lh.EWMA = m.cfg.Alpha*x + (1-m.cfg.Alpha)*lh.EWMA
	}
}

// Health returns the link's observed history (zero value if never
// observed).
func (m *LinkMonitor) Health(at LinkAddr) LinkHealth {
	if lh := m.links[at]; lh != nil {
		return *lh
	}
	return LinkHealth{}
}

// Suspects lists the links whose EWMA is at or above the threshold
// with enough frames observed, in (stage, wire) order — the candidates
// for the BIST-scan → quarantine escalation. Already-escalated links
// are excluded.
func (m *LinkMonitor) Suspects() []LinkAddr {
	var out []LinkAddr
	for at, lh := range m.links {
		if !lh.Escalated && lh.Frames >= m.cfg.MinFrames && lh.EWMA >= m.cfg.Threshold {
			out = append(out, at)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Stage != out[j].Stage {
			return out[i].Stage < out[j].Stage
		}
		return out[i].Wire < out[j].Wire
	})
	return out
}

// Reset discards the link's observed history, giving it a fresh trial.
// The receiver calls this to exonerate a link whose corrupt frames were
// all explained by another link that has since been quarantined — the
// old evidence is stale once the true culprit is out of service. An
// escalated link stays escalated (out of service is permanent).
func (m *LinkMonitor) Reset(at LinkAddr) {
	if lh := m.links[at]; lh != nil && !lh.Escalated {
		delete(m.links, at)
	}
}

// Escalate marks the link as handed off to the health plane; further
// observations are ignored and it never re-appears in Suspects.
func (m *LinkMonitor) Escalate(at LinkAddr) {
	lh := m.links[at]
	if lh == nil {
		lh = &LinkHealth{}
		m.links[at] = lh
	}
	lh.Escalated = true
}

// Snapshot returns a copy of every observed link's health, keyed by
// address.
func (m *LinkMonitor) Snapshot() map[LinkAddr]LinkHealth {
	out := make(map[LinkAddr]LinkHealth, len(m.links))
	for at, lh := range m.links {
		out[at] = *lh
	}
	return out
}
