package link

import "testing"

func TestMonitorConfigValidate(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  MonitorConfig
	}{
		{"alpha above one", MonitorConfig{Alpha: 1.5}},
		{"negative alpha", MonitorConfig{Alpha: -0.2}},
		{"threshold above one", MonitorConfig{Threshold: 2}},
		{"negative min frames", MonitorConfig{MinFrames: -1}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewLinkMonitor(tc.cfg); err == nil {
				t.Errorf("accepted %+v", tc.cfg)
			}
		})
	}
	m, err := NewLinkMonitor(MonitorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := m.Config()
	if cfg.Alpha != 0.25 || cfg.Threshold != 0.3 || cfg.MinFrames != 8 {
		t.Errorf("defaults wrong: %+v", cfg)
	}
}

// A link corrupting every frame crosses the threshold after exactly
// MinFrames observations; a clean link never does; a recovering link's
// EWMA decays back under the threshold.
func TestMonitorEscalationBounds(t *testing.T) {
	m, err := NewLinkMonitor(MonitorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	bad := LinkAddr{Stage: 3, Wire: 4}
	good := LinkAddr{Stage: 3, Wire: 5}
	for i := 0; i < m.Config().MinFrames; i++ {
		if len(m.Suspects()) != 0 {
			t.Fatalf("suspect after only %d frames", i)
		}
		m.Observe(bad, true)
		m.Observe(good, false)
	}
	suspects := m.Suspects()
	if len(suspects) != 1 || suspects[0] != bad {
		t.Fatalf("suspects = %v, want [%v]", suspects, bad)
	}
	if h := m.Health(bad); h.Frames != 8 || h.Corrupted != 8 || h.EWMA != 1 {
		t.Errorf("bad link health %+v", h)
	}
	if h := m.Health(good); h.EWMA != 0 || h.Corrupted != 0 {
		t.Errorf("good link health %+v", h)
	}

	// Escalation takes the link out of observation permanently.
	m.Escalate(bad)
	if len(m.Suspects()) != 0 {
		t.Error("escalated link still suspect")
	}
	m.Observe(bad, true)
	if h := m.Health(bad); h.Frames != 8 {
		t.Error("escalated link still observed")
	}

	// A transient glitch decays: corrupt burst then a clean run.
	flaky := LinkAddr{Stage: 3, Wire: 6}
	for i := 0; i < 4; i++ {
		m.Observe(flaky, true)
	}
	for i := 0; i < 40; i++ {
		m.Observe(flaky, false)
	}
	if h := m.Health(flaky); h.EWMA >= m.Config().Threshold {
		t.Errorf("flaky link EWMA %.3f never decayed", h.EWMA)
	}
	for _, s := range m.Suspects() {
		if s == flaky {
			t.Error("recovered link still suspect")
		}
	}
}

// Reset exonerates a link (fresh trial) but cannot un-escalate one.
func TestMonitorReset(t *testing.T) {
	m, _ := NewLinkMonitor(MonitorConfig{})
	at := LinkAddr{Stage: 1, Wire: 2}
	for i := 0; i < 10; i++ {
		m.Observe(at, true)
	}
	if len(m.Suspects()) != 1 {
		t.Fatal("link never became suspect")
	}
	m.Reset(at)
	if h := m.Health(at); h.Frames != 0 || h.EWMA != 0 {
		t.Errorf("reset left history %+v", h)
	}
	if len(m.Suspects()) != 0 {
		t.Error("reset link still suspect")
	}
	m.Escalate(at)
	m.Reset(at)
	if !m.Health(at).Escalated {
		t.Error("reset cleared an escalation")
	}
}

func TestMonitorSnapshot(t *testing.T) {
	m, _ := NewLinkMonitor(MonitorConfig{})
	m.Observe(LinkAddr{0, 1}, true)
	m.Observe(LinkAddr{0, 2}, false)
	snap := m.Snapshot()
	if len(snap) != 2 || snap[LinkAddr{0, 1}].Corrupted != 1 || snap[LinkAddr{0, 2}].Frames != 1 {
		t.Errorf("snapshot %v", snap)
	}
	// Snapshot is a copy.
	h := snap[LinkAddr{0, 1}]
	h.Frames = 99
	if m.Health(LinkAddr{0, 1}).Frames == 99 {
		t.Error("snapshot aliases monitor state")
	}
}
