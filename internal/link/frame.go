package link

import "fmt"

// Frame layout, in stream order (one bit per clock cycle, following
// §2's valid bit):
//
//	[ seq : 8 bits ][ payload : L bits ][ crc : 0/8/16 bits ]
//
// The sequence number is the sender's per-input frame counter modulo
// SeqSpace; the checksum covers the sequence byte and the payload bits
// packed MSB-first (the trailing partial payload byte zero-padded —
// unambiguous because the payload length is fixed by the stream
// length, never carried in the frame).

// SeqBits is the sequence-number field width.
const SeqBits = 8

// SeqSpace is the sequence-number space; sliding windows must stay
// at or below SeqSpace/2 so a received sequence number is unambiguous.
const SeqSpace = 1 << SeqBits

// FrameOverhead returns the framing cost in bits for the checksum.
func FrameOverhead(c CRC) int { return SeqBits + c.Bits() }

// packFrameBytes packs the sequence byte and the payload bit stream
// (values 0/1, MSB-first, trailing byte zero-padded) into the byte
// string the checksum covers.
func packFrameBytes(seq int, payload []byte) []byte {
	data := make([]byte, 1+(len(payload)+7)/8)
	data[0] = byte(seq)
	for i, bit := range payload {
		if bit&1 != 0 {
			data[1+i/8] |= 0x80 >> uint(i%8)
		}
	}
	return data
}

// AppendBits appends the low `width` bits of v to a frame bit stream
// (one byte per bit, values 0/1), MSB-first — the field packing every
// framed header in the repo uses. It is exported so higher layers
// (the byzantine plane's provenance tags) can ride the same framing.
func AppendBits(bits []byte, v uint64, width int) []byte {
	for b := width - 1; b >= 0; b-- {
		bits = append(bits, byte(v>>uint(b))&1)
	}
	return bits
}

// FieldBits reads the `width`-bit field starting at bit offset off
// from a frame bit stream, MSB-first — the inverse of AppendBits. The
// caller guarantees off+width ≤ len(bits).
func FieldBits(bits []byte, off, width int) uint64 {
	var v uint64
	for _, b := range bits[off : off+width] {
		v = v<<1 | uint64(b&1)
	}
	return v
}

// EncodeFrame wraps a payload bit stream with the sequence number and
// checksum, returning the frame's bit stream.
func EncodeFrame(c CRC, seq int, payload []byte) []byte {
	seq &= SeqSpace - 1
	frame := make([]byte, 0, SeqBits+len(payload)+c.Bits())
	frame = AppendBits(frame, uint64(seq), SeqBits)
	frame = append(frame, payload...)
	if bits := c.Bits(); bits > 0 {
		sum := c.checksum(packFrameBytes(seq, payload))
		frame = AppendBits(frame, uint64(sum), bits)
	}
	return frame
}

// DecodeFrame splits a received frame bit stream and verifies its
// checksum. ok reports checksum agreement (always true for CRCNone —
// no detection); payload aliases the input slice. An error means the
// stream is too short to even be a frame, which a receiver treats the
// same as a failed checksum.
func DecodeFrame(c CRC, bits []byte) (seq int, payload []byte, ok bool, err error) {
	overhead := FrameOverhead(c)
	if len(bits) < overhead {
		return 0, nil, false, fmt.Errorf("link: frame of %d bits is shorter than the %d-bit %s framing", len(bits), overhead, c)
	}
	seq = int(FieldBits(bits, 0, SeqBits))
	payload = bits[SeqBits : len(bits)-c.Bits()]
	if c.Bits() == 0 {
		return seq, payload, true, nil
	}
	got := uint16(FieldBits(bits, len(bits)-c.Bits(), c.Bits()))
	want := c.checksum(packFrameBytes(seq, payload))
	return seq, payload, got == want, nil
}
