// Package link gives the data plane of the multichip switches its own
// integrity machinery. The paper's switches are combinational wire
// networks: after the setup cycle, payload bits stream over stage-to-
// stage links and board-level output wires with no checking at all —
// §2's message format simply assumes every bit arrives intact. Real
// multichip boards lose bits on inter-chip links (cf. Tiny Tera's
// CRC-protected cells with per-link retransmission), so this package
// supplies:
//
//   - a seeded wire-corruption fault plane (CorruptionPlane): transient
//     bit flips, burst errors, stuck wires and erasures, addressable
//     per stage-to-stage link and per output wire, composing with the
//     chip-level fault plane of internal/core;
//   - payload framing (EncodeFrame/DecodeFrame): sequence numbers plus
//     a selectable table-driven CRC-8/CRC-16, so receivers detect
//     corruption instead of silently consuming garbage;
//   - per-(stage, link) corruption-rate tracking (LinkMonitor) with an
//     EWMA threshold that escalates a persistently-corrupting link into
//     the health plane's suspect → BIST-scan → quarantine path.
//
// The sliding-window ARQ protocol that uses these pieces lives in
// internal/switchsim (the session layer owns the round loop); this
// package is pure protocol substrate with no internal dependencies.
package link

import "fmt"

// CRC selects the frame checksum. CRCNone frames carry a sequence
// number but no checksum: corruption passes undetected, which is the
// baseline that motivates the other two.
type CRC int

// The selectable frame checksums.
const (
	// CRCNone disables corruption detection (sequence number only).
	CRCNone CRC = iota
	// CRC8 is the 8-bit ATM-HEC polynomial x⁸+x²+x+1 (0x07): Hamming
	// distance 4 for datawords up to 119 bits.
	CRC8
	// CRC16 is the 16-bit CCITT polynomial x¹⁶+x¹²+x⁵+1 (0x1021),
	// init 0xFFFF: Hamming distance 4 for datawords up to 32751 bits.
	CRC16
)

// String names the checksum.
func (c CRC) String() string {
	switch c {
	case CRCNone:
		return "none"
	case CRC8:
		return "crc8"
	case CRC16:
		return "crc16"
	default:
		return fmt.Sprintf("CRC(%d)", int(c))
	}
}

// ParseCRC parses a checksum name as accepted on CLI flags.
func ParseCRC(s string) (CRC, error) {
	switch s {
	case "none", "":
		return CRCNone, nil
	case "crc8", "8":
		return CRC8, nil
	case "crc16", "16":
		return CRC16, nil
	default:
		return CRCNone, fmt.Errorf("link: unknown CRC %q (want none, crc8 or crc16)", s)
	}
}

// Bits returns the checksum field width in bits.
func (c CRC) Bits() int {
	switch c {
	case CRC8:
		return 8
	case CRC16:
		return 16
	default:
		return 0
	}
}

// Valid reports whether c is a known checksum selector.
func (c CRC) Valid() bool { return c >= CRCNone && c <= CRC16 }

// GuaranteedBits returns the largest dataword length (in bits) for
// which the checksum detects every error of ≤ 3 flipped bits (Hamming
// distance 4). CRCNone detects nothing.
func (c CRC) GuaranteedBits() int {
	switch c {
	case CRC8:
		return 119
	case CRC16:
		return 32751
	default:
		return 0
	}
}

// Table-driven codecs. The tables are the byte-at-a-time expansion of
// the generator polynomial — exactly what a hardware frame checker
// would hold in ROM next to its shift register.

const (
	crc8Poly  = 0x07
	crc16Poly = 0x1021
	crc16Init = 0xFFFF
)

var (
	crc8Table  = makeCRC8Table()
	crc16Table = makeCRC16Table()
)

func makeCRC8Table() [256]byte {
	var t [256]byte
	for i := 0; i < 256; i++ {
		crc := byte(i)
		for b := 0; b < 8; b++ {
			if crc&0x80 != 0 {
				crc = crc<<1 ^ crc8Poly
			} else {
				crc <<= 1
			}
		}
		t[i] = crc
	}
	return t
}

func makeCRC16Table() [256]uint16 {
	var t [256]uint16
	for i := 0; i < 256; i++ {
		crc := uint16(i) << 8
		for b := 0; b < 8; b++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ crc16Poly
			} else {
				crc <<= 1
			}
		}
		t[i] = crc
	}
	return t
}

// Checksum8 computes the CRC-8 of data (init 0).
func Checksum8(data []byte) byte {
	var crc byte
	for _, b := range data {
		crc = crc8Table[crc^b]
	}
	return crc
}

// Checksum16 computes the CRC-16/CCITT-FALSE of data (init 0xFFFF).
func Checksum16(data []byte) uint16 {
	crc := uint16(crc16Init)
	for _, b := range data {
		crc = crc<<8 ^ crc16Table[byte(crc>>8)^b]
	}
	return crc
}

// checksum computes the selected checksum of data, widened to uint16.
func (c CRC) checksum(data []byte) uint16 {
	switch c {
	case CRC8:
		return uint16(Checksum8(data))
	case CRC16:
		return Checksum16(data)
	default:
		return 0
	}
}
