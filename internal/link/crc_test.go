package link

import "testing"

// The standard check values: CRC over the ASCII bytes "123456789".
func TestChecksumKnownAnswers(t *testing.T) {
	check := []byte("123456789")
	if got := Checksum8(check); got != 0xF4 {
		t.Errorf("CRC-8 check value: got %#02x, want 0xf4", got)
	}
	if got := Checksum16(check); got != 0x29B1 {
		t.Errorf("CRC-16/CCITT-FALSE check value: got %#04x, want 0x29b1", got)
	}
}

func TestCRCParseAndNames(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want CRC
	}{
		{"none", CRCNone}, {"", CRCNone},
		{"crc8", CRC8}, {"8", CRC8},
		{"crc16", CRC16}, {"16", CRC16},
	} {
		got, err := ParseCRC(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseCRC(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseCRC("crc32"); err == nil {
		t.Error("ParseCRC accepted crc32")
	}
	if CRCNone.String() != "none" || CRC8.String() != "crc8" || CRC16.String() != "crc16" {
		t.Error("CRC names wrong")
	}
	if CRCNone.Bits() != 0 || CRC8.Bits() != 8 || CRC16.Bits() != 16 {
		t.Error("CRC widths wrong")
	}
	if CRC(7).Valid() || !CRC16.Valid() {
		t.Error("CRC.Valid wrong")
	}
}

// TestCRCDistanceExhaustive nails the Hamming-distance-4 claim the ARQ
// layer leans on: for the frame sizes the simulator streams, every
// error of 1, 2 or 3 flipped bits is detected. Exhaustive over all
// flip position combinations.
func TestCRCDistanceExhaustive(t *testing.T) {
	for _, tc := range []struct {
		crc     CRC
		payload int
	}{
		{CRC8, 8},
		{CRC8, 32},
		{CRC16, 32},
	} {
		payload := make([]byte, tc.payload)
		for i := range payload {
			payload[i] = byte((i * 7) % 2)
		}
		frame := EncodeFrame(tc.crc, 0xA5, payload)
		n := len(frame)
		flipped := make([]byte, n)
		check := func(i, j, k int) {
			copy(flipped, frame)
			flipped[i] ^= 1
			if j >= 0 {
				flipped[j] ^= 1
			}
			if k >= 0 {
				flipped[k] ^= 1
			}
			if _, _, ok, err := DecodeFrame(tc.crc, flipped); err != nil || ok {
				t.Fatalf("%s payload %d: flips (%d,%d,%d) undetected (ok=%v err=%v)",
					tc.crc, tc.payload, i, j, k, ok, err)
			}
		}
		for i := 0; i < n; i++ {
			check(i, -1, -1)
			for j := i + 1; j < n; j++ {
				check(i, j, -1)
				for k := j + 1; k < n; k++ {
					check(i, j, k)
				}
			}
		}
	}
}
