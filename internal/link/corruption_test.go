package link

import (
	"bytes"
	"testing"
)

func mustAdd(t *testing.T, p *CorruptionPlane, f WireFault) {
	t.Helper()
	if err := p.Add(f); err != nil {
		t.Fatal(err)
	}
}

func TestWireFaultValidate(t *testing.T) {
	for _, tc := range []struct {
		name string
		f    WireFault
	}{
		{"stage below AllStages", WireFault{Stage: -2, Wire: 0, Mode: WireBitFlip, BER: 0.1}},
		{"bad wire", WireFault{Stage: 0, Wire: -2, Mode: WireBitFlip, BER: 0.1}},
		{"negative BER", WireFault{Stage: 0, Wire: 0, Mode: WireBitFlip, BER: -0.1}},
		{"BER above one", WireFault{Stage: 0, Wire: 0, Mode: WireBitFlip, BER: 1.5}},
		{"zero burst", WireFault{Stage: 0, Wire: 0, Mode: WireBurst}},
		{"stuck at two", WireFault{Stage: 0, Wire: 0, Mode: WireStuck, StuckValue: 2}},
		{"negative from", WireFault{Stage: 0, Wire: 0, Mode: WireErasure, From: -1}},
		{"empty window", WireFault{Stage: 0, Wire: 0, Mode: WireErasure, From: 5, Until: 5}},
		{"unknown mode", WireFault{Stage: 0, Wire: 0, Mode: WireFaultMode(9)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if err := NewCorruptionPlane(1).Add(tc.f); err == nil {
				t.Errorf("accepted %v", tc.f)
			}
		})
	}
}

// Corruption is a pure function of (seed, round, stage, wire): two
// planes with the same seed corrupt identically regardless of call
// order; a different seed diverges.
func TestCorruptDeterministic(t *testing.T) {
	build := func(seed int64) *CorruptionPlane {
		p := NewCorruptionPlane(seed)
		mustAdd(t, p, WireFault{Stage: 1, Wire: AllWires, Mode: WireBitFlip, BER: 0.3})
		return p
	}
	bits := func() []byte { return bytes.Repeat([]byte{1, 0, 1, 1}, 16) }

	a, b := build(42), build(42)
	// Warm b with unrelated calls first: order must not matter.
	b.Corrupt(9, LinkAddr{Stage: 1, Wire: 7}, bits())
	for round := 0; round < 8; round++ {
		ba, bb := bits(), bits()
		fa, _ := a.Corrupt(round, LinkAddr{Stage: 1, Wire: 3}, ba)
		fb, _ := b.Corrupt(round, LinkAddr{Stage: 1, Wire: 3}, bb)
		if fa != fb || !bytes.Equal(ba, bb) {
			t.Fatalf("round %d: same seed diverged (%d vs %d flips)", round, fa, fb)
		}
	}
	diverged := false
	c := build(43)
	for round := 0; round < 8 && !diverged; round++ {
		ba, bc := bits(), bits()
		a.Corrupt(round, LinkAddr{Stage: 1, Wire: 3}, ba)
		c.Corrupt(round, LinkAddr{Stage: 1, Wire: 3}, bc)
		diverged = !bytes.Equal(ba, bc)
	}
	if !diverged {
		t.Error("different seeds never diverged")
	}
}

func TestCorruptModes(t *testing.T) {
	at := LinkAddr{Stage: 2, Wire: 5}
	fresh := func() []byte { return []byte{1, 1, 1, 1, 0, 0, 0, 0} }

	t.Run("stuck", func(t *testing.T) {
		p := NewCorruptionPlane(1)
		mustAdd(t, p, WireFault{Stage: 2, Wire: 5, Mode: WireStuck, StuckValue: 0})
		bits := fresh()
		flipped, erased := p.Corrupt(0, at, bits)
		if erased || flipped != 4 || !bytes.Equal(bits, make([]byte, 8)) {
			t.Fatalf("stuck-at-0: flipped %d erased %v bits %v", flipped, erased, bits)
		}
	})
	t.Run("erasure", func(t *testing.T) {
		p := NewCorruptionPlane(1)
		mustAdd(t, p, WireFault{Stage: 2, Wire: 5, Mode: WireErasure})
		bits := fresh()
		flipped, erased := p.Corrupt(0, at, bits)
		if !erased || flipped != len(bits) {
			t.Fatalf("erasure: flipped %d erased %v", flipped, erased)
		}
	})
	t.Run("burst", func(t *testing.T) {
		p := NewCorruptionPlane(1)
		mustAdd(t, p, WireFault{Stage: 2, Wire: 5, Mode: WireBurst, BurstLen: 3, BurstEvery: 4})
		bits := fresh()
		if flipped, _ := p.Corrupt(0, at, bits); flipped != 3 {
			t.Fatalf("burst round 0: flipped %d, want 3", flipped)
		}
		// Flips are consecutive.
		runs, inRun := 0, false
		for i := range bits {
			changed := bits[i] != fresh()[i]
			if changed && !inRun {
				runs++
			}
			inRun = changed
		}
		if runs != 1 {
			t.Fatalf("burst not consecutive: %v", bits)
		}
		if flipped, _ := p.Corrupt(1, at, fresh()); flipped != 0 {
			t.Fatal("burst fired off its cadence")
		}
		if flipped, _ := p.Corrupt(4, at, fresh()); flipped != 3 {
			t.Fatal("burst missed its cadence")
		}
	})
	t.Run("window", func(t *testing.T) {
		p := NewCorruptionPlane(1)
		mustAdd(t, p, WireFault{Stage: 2, Wire: 5, Mode: WireStuck, StuckValue: 0, From: 3, Until: 5})
		for round, want := range map[int]bool{2: false, 3: true, 4: true, 5: false} {
			flipped, _ := p.Corrupt(round, at, fresh())
			if (flipped > 0) != want {
				t.Errorf("round %d: active=%v, want %v", round, flipped > 0, want)
			}
		}
	})
	t.Run("wrong link untouched", func(t *testing.T) {
		p := NewCorruptionPlane(1)
		mustAdd(t, p, WireFault{Stage: 2, Wire: 5, Mode: WireStuck, StuckValue: 0})
		if flipped, _ := p.Corrupt(0, LinkAddr{Stage: 2, Wire: 6}, fresh()); flipped != 0 {
			t.Error("fault leaked to another wire")
		}
		if flipped, _ := p.Corrupt(0, LinkAddr{Stage: 1, Wire: 5}, fresh()); flipped != 0 {
			t.Error("fault leaked to another stage")
		}
	})
	t.Run("all wires", func(t *testing.T) {
		p := NewCorruptionPlane(1)
		mustAdd(t, p, WireFault{Stage: 2, Wire: AllWires, Mode: WireStuck, StuckValue: 0})
		for _, wire := range []int{0, 5, 17} {
			if flipped, _ := p.Corrupt(0, LinkAddr{Stage: 2, Wire: wire}, fresh()); flipped != 4 {
				t.Errorf("AllWires missed wire %d", wire)
			}
		}
	})
	t.Run("nil plane", func(t *testing.T) {
		var p *CorruptionPlane
		if flipped, erased := p.Corrupt(0, at, fresh()); flipped != 0 || erased {
			t.Error("nil plane corrupted")
		}
		if p.Len() != 0 || p.Faults() != nil || p.Clone() != nil {
			t.Error("nil plane accessors wrong")
		}
	})
}

func TestBitFlipBERRate(t *testing.T) {
	p := NewCorruptionPlane(11)
	mustAdd(t, p, WireFault{Stage: 0, Wire: AllWires, Mode: WireBitFlip, BER: 0.1})
	total, flipped := 0, 0
	for round := 0; round < 200; round++ {
		bits := make([]byte, 64)
		f, _ := p.Corrupt(round, LinkAddr{Stage: 0, Wire: round % 8}, bits)
		total += 64
		flipped += f
	}
	rate := float64(flipped) / float64(total)
	if rate < 0.07 || rate > 0.13 {
		t.Errorf("BER 0.1 realized as %.3f", rate)
	}
}

func TestPath(t *testing.T) {
	got := Path(3, 7, 2)
	want := []LinkAddr{{0, 7}, {1, 2}, {2, 2}, {3, 2}}
	if len(got) != len(want) {
		t.Fatalf("path %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("path %v, want %v", got, want)
		}
	}
	if single := Path(0, 4, 1); len(single) != 2 || single[0] != (LinkAddr{0, 4}) || single[1] != (LinkAddr{1, 1}) {
		t.Fatalf("single-chip path %v", single)
	}
}
