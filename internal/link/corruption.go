package link

import (
	"fmt"
	"math/rand"
	"sort"

	"concentrators/internal/seedrand"
	"concentrators/internal/window"
)

// WireFaultMode selects the failure mode of one wire-level fault.
type WireFaultMode int

// The modelled wire failure modes.
const (
	// WireBitFlip flips each bit crossing the link independently with
	// probability BER (a noisy/marginal link).
	WireBitFlip WireFaultMode = iota
	// WireBurst flips BurstLen consecutive bits of a frame, once every
	// BurstEvery rounds (crosstalk, supply droop, connector chatter).
	WireBurst
	// WireStuck drives every bit crossing the link to StuckValue
	// (a shorted or floating wire).
	WireStuck
	// WireErasure destroys the frame entirely: the receiver sees
	// nothing at all on the wire (lost framing, open connection).
	WireErasure
)

// String names the mode.
func (m WireFaultMode) String() string {
	switch m {
	case WireBitFlip:
		return "bit-flip"
	case WireBurst:
		return "burst"
	case WireStuck:
		return "stuck"
	case WireErasure:
		return "erasure"
	default:
		return fmt.Sprintf("WireFaultMode(%d)", int(m))
	}
}

// AllWires as a WireFault.Wire targets every wire of the fault's stage;
// AllStages as a WireFault.Stage targets every link bundle. Together
// they model ambient board noise rather than a single bad trace.
const (
	AllWires  = -1
	AllStages = -1
)

// LinkAddr addresses one stage-to-stage link of a multichip switch:
// Stage s is the wire bundle leaving chip stage s (stage 0 is the
// switch's input side; the last stage is the board-level output wires).
type LinkAddr struct {
	Stage, Wire int
}

// String renders the address.
func (a LinkAddr) String() string { return fmt.Sprintf("stage %d wire %d", a.Stage, a.Wire) }

// WireFault is one wire-level fault on the corruption plane.
type WireFault struct {
	// Stage is the stage-to-stage link bundle the fault sits on.
	Stage int
	// Wire is the wire index within the bundle, or AllWires.
	Wire int
	// Mode is the failure mode.
	Mode WireFaultMode
	// BER is the per-bit flip probability (WireBitFlip only).
	BER float64
	// BurstLen and BurstEvery shape WireBurst faults: BurstLen
	// consecutive bits flip in rounds where (round−From) is a multiple
	// of BurstEvery (BurstEvery ≤ 1 means every round).
	BurstLen, BurstEvery int
	// StuckValue is the driven value, 0 or 1 (WireStuck only).
	StuckValue byte
	// From and Until bound the rounds the fault is live: active for
	// From ≤ round < Until; Until ≤ 0 means forever.
	From, Until int
}

// String renders the fault.
func (f WireFault) String() string {
	st := fmt.Sprintf("stage %d", f.Stage)
	if f.Stage == AllStages {
		st = "all stages"
	}
	target := fmt.Sprintf("%s wire %d", st, f.Wire)
	if f.Wire == AllWires {
		target = fmt.Sprintf("%s all wires", st)
	}
	window := ""
	if f.Until > 0 {
		window = fmt.Sprintf(" rounds [%d,%d)", f.From, f.Until)
	} else if f.From > 0 {
		window = fmt.Sprintf(" from round %d", f.From)
	}
	switch f.Mode {
	case WireBitFlip:
		return fmt.Sprintf("%s: bit-flip BER %g%s", target, f.BER, window)
	case WireBurst:
		return fmt.Sprintf("%s: burst %d bits every %d rounds%s", target, f.BurstLen, max(f.BurstEvery, 1), window)
	case WireStuck:
		return fmt.Sprintf("%s: stuck-at-%d%s", target, f.StuckValue, window)
	default:
		return fmt.Sprintf("%s: %s%s", target, f.Mode, window)
	}
}

// Validate rejects malformed faults.
func (f WireFault) Validate() error {
	switch {
	case f.Stage < AllStages:
		return fmt.Errorf("link: stage %d in %v (want ≥ 0 or AllStages)", f.Stage, f)
	case f.Wire < AllWires:
		return fmt.Errorf("link: wire %d in %v (want ≥ 0 or AllWires)", f.Wire, f)
	}
	if err := window.Check(f.From, f.Until); err != nil {
		return fmt.Errorf("link: %v in %v", err, f)
	}
	switch f.Mode {
	case WireBitFlip:
		if f.BER != f.BER || f.BER < 0 || f.BER > 1 {
			return fmt.Errorf("link: BER %v outside [0,1] in %v", f.BER, f)
		}
	case WireBurst:
		if f.BurstLen < 1 {
			return fmt.Errorf("link: burst length %d < 1 in %v", f.BurstLen, f)
		}
	case WireStuck:
		if f.StuckValue > 1 {
			return fmt.Errorf("link: stuck value %d not a bit in %v", f.StuckValue, f)
		}
	case WireErasure:
	default:
		return fmt.Errorf("link: unknown wire fault mode in %v", f)
	}
	return nil
}

// active reports whether the fault is live in the given round.
func (f WireFault) active(round int) bool {
	return window.Span{From: f.From, Until: f.Until}.Active(round)
}

// CorruptionPlane is a seeded set of wire-level faults — the data
// plane's counterpart of core.FaultPlane. Corruption is deterministic:
// the bits flipped on a link depend only on the plane's seed and the
// (round, stage, wire) coordinates, never on call order, so a
// corruption-induced failure replays bit-for-bit from its seed.
// The zero value of *CorruptionPlane (nil) means clean wires.
type CorruptionPlane struct {
	seed   int64
	faults []WireFault
}

// NewCorruptionPlane returns an empty plane with the given seed.
func NewCorruptionPlane(seed int64) *CorruptionPlane {
	return &CorruptionPlane{seed: seed}
}

// Add validates and inserts a wire fault. Multiple faults may target
// the same link; their effects compose in insertion order.
func (p *CorruptionPlane) Add(f WireFault) error {
	if err := f.Validate(); err != nil {
		return err
	}
	p.faults = append(p.faults, f)
	return nil
}

// Len returns the number of live faults.
func (p *CorruptionPlane) Len() int {
	if p == nil {
		return 0
	}
	return len(p.faults)
}

// Faults lists the faults in deterministic (stage, wire, From) order.
func (p *CorruptionPlane) Faults() []WireFault {
	if p == nil {
		return nil
	}
	out := append([]WireFault(nil), p.faults...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Stage != out[j].Stage {
			return out[i].Stage < out[j].Stage
		}
		if out[i].Wire != out[j].Wire {
			return out[i].Wire < out[j].Wire
		}
		return out[i].From < out[j].From
	})
	return out
}

// Clone returns an independent copy of the plane.
func (p *CorruptionPlane) Clone() *CorruptionPlane {
	if p == nil {
		return nil
	}
	return &CorruptionPlane{seed: p.seed, faults: append([]WireFault(nil), p.faults...)}
}

// Seed returns the plane's stream seed (checkpointing needs it to
// rebuild an identical plane after a crash-restart).
func (p *CorruptionPlane) Seed() int64 {
	if p == nil {
		return 0
	}
	return p.seed
}

// rng derives the deterministic bit-noise source for one (round, link)
// coordinate.
func (p *CorruptionPlane) rng(round int, at LinkAddr) *rand.Rand {
	h := seedrand.Mix64(uint64(p.seed) ^ seedrand.Mix64(uint64(round)<<32|uint64(uint32(at.Stage))) ^ seedrand.Mix64(uint64(at.Wire)+0x51ED270B))
	return rand.New(rand.NewSource(int64(h)))
}

// Corrupt applies every fault live on the given link in the given
// round to a frame's bit stream, in place. It returns the number of
// bits changed and whether the frame was erased outright (erased
// frames carry no bits at all; flipped is then the full frame length).
func (p *CorruptionPlane) Corrupt(round int, at LinkAddr, bits []byte) (flipped int, erased bool) {
	if p == nil || len(bits) == 0 {
		return 0, false
	}
	var rng *rand.Rand
	for _, f := range p.faults {
		if (f.Stage != AllStages && f.Stage != at.Stage) || (f.Wire != AllWires && f.Wire != at.Wire) || !f.active(round) {
			continue
		}
		if rng == nil {
			rng = p.rng(round, at)
		}
		switch f.Mode {
		case WireBitFlip:
			for i := range bits {
				if rng.Float64() < f.BER {
					bits[i] ^= 1
					flipped++
				}
			}
		case WireBurst:
			every := max(f.BurstEvery, 1)
			if (round-f.From)%every != 0 {
				continue
			}
			start := 0
			if len(bits) > f.BurstLen {
				start = rng.Intn(len(bits) - f.BurstLen + 1)
			}
			for i := start; i < len(bits) && i < start+f.BurstLen; i++ {
				bits[i] ^= 1
				flipped++
			}
		case WireStuck:
			for i := range bits {
				if bits[i]&1 != f.StuckValue {
					bits[i] = f.StuckValue
					flipped++
				}
			}
		case WireErasure:
			return len(bits), true
		}
	}
	return flipped, erased
}

// Path lists the links a message established at setup crosses in a
// switch with stages chip stages: the input-side link (stage 0, wire =
// input), then the bundle leaving each chip stage at the message's
// settled position — approximated by its output wire, which is exact
// for the final board-level link where receivers observe corruption.
// A single-chip switch (stages ≤ 1) has just the input and output links.
func Path(stages, input, output int) []LinkAddr {
	if stages < 1 {
		stages = 1
	}
	path := make([]LinkAddr, 0, stages+1)
	path = append(path, LinkAddr{Stage: 0, Wire: input})
	for s := 1; s <= stages; s++ {
		path = append(path, LinkAddr{Stage: s, Wire: output})
	}
	return path
}
