package link

import (
	"bytes"
	"testing"
)

// FuzzFrameRoundTrip drives the frame codec with arbitrary payloads
// and flip patterns: a clean encode→decode must round-trip exactly,
// and flipping ≤ 3 distinct frame bits must never yield a false
// "valid" while the frame is within the CRC's guaranteed Hamming-
// distance-4 length — the property the ARQ layer's "no corrupted
// payload is ever counted as delivered" acceptance rests on.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add([]byte{1, 0, 1, 1}, uint8(1), uint16(0), uint16(1), uint16(2), uint8(3))
	f.Add([]byte{0}, uint8(2), uint16(3), uint16(3), uint16(3), uint8(1))
	f.Add(bytes.Repeat([]byte{1, 0}, 50), uint8(2), uint16(9), uint16(40), uint16(77), uint8(2))
	f.Add([]byte{1, 1, 1, 1, 1, 1, 1, 1}, uint8(1), uint16(7), uint16(8), uint16(15), uint8(0))
	f.Fuzz(func(t *testing.T, payload []byte, crcSel uint8, f1, f2, f3 uint16, nflips uint8) {
		if len(payload) == 0 {
			return
		}
		for i := range payload {
			payload[i] &= 1
		}
		crc := CRC(crcSel % 3)
		// Stay within the guaranteed HD-4 dataword length (seq byte +
		// payload bits); beyond it a 3-bit error may legitimately alias.
		if crc != CRCNone && SeqBits+len(payload) > crc.GuaranteedBits() {
			payload = payload[:crc.GuaranteedBits()-SeqBits]
		}

		seq := int(f1) % SeqSpace
		frame := EncodeFrame(crc, seq, payload)
		gotSeq, gotPayload, ok, err := DecodeFrame(crc, frame)
		if err != nil || !ok || gotSeq != seq || !bytes.Equal(gotPayload, payload) {
			t.Fatalf("clean round trip failed: seq %d→%d ok=%v err=%v", seq, gotSeq, ok, err)
		}

		// Flip 1–3 distinct bits; the CRC must catch all of them.
		positions := map[int]bool{}
		for _, p := range []uint16{f1, f2, f3}[:1+nflips%3] {
			positions[int(p)%len(frame)] = true
		}
		for p := range positions {
			frame[p] ^= 1
		}
		_, decoded, ok, err := DecodeFrame(crc, frame)
		if err != nil {
			t.Fatalf("flipped frame errored: %v", err)
		}
		if crc == CRCNone {
			if !ok {
				t.Fatal("CRCNone claimed detection")
			}
			return
		}
		if ok {
			t.Fatalf("%s passed a frame with %d flipped bits (payload %d bits): %v",
				crc, len(positions), len(payload), decoded)
		}
	})
}
