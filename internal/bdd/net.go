package bdd

import (
	"fmt"

	"concentrators/internal/logic"
)

// FromNet symbolically evaluates a combinational netlist, returning one
// BDD per marked output (in output order) over variables numbered like
// the net's inputs. The manager must have at least net.NumInputs()
// variables.
func FromNet(m *Manager, net *logic.Net) ([]Ref, error) {
	if net.NumInputs() > m.numVars {
		return nil, fmt.Errorf("bdd: netlist has %d inputs, manager only %d vars",
			net.NumInputs(), m.numVars)
	}
	vars := make([]Ref, net.NumInputs())
	for i := range vars {
		vars[i] = m.Var(i)
	}
	return logic.EvalSymbolic(
		net, vars,
		m.Const(false), m.Const(true),
		func(a Ref) Ref { return m.Not(a) },
		func(a, b Ref) Ref { return m.And(a, b) },
		func(a, b Ref) Ref { return m.Or(a, b) },
		func(a, b Ref) Ref { return m.Xor(a, b) },
	), nil
}

// Equivalent proves two netlists compute identical functions (same
// arity assumed) by canonical-BDD comparison — a FORMAL check over all
// 2^n inputs.
func Equivalent(a, b *logic.Net) (bool, error) {
	if a.NumInputs() != b.NumInputs() || a.NumOutputs() != b.NumOutputs() {
		return false, fmt.Errorf("bdd: arity mismatch (%d,%d) vs (%d,%d)",
			a.NumInputs(), a.NumOutputs(), b.NumInputs(), b.NumOutputs())
	}
	m, err := New(a.NumInputs())
	if err != nil {
		return false, err
	}
	fa, err := FromNet(m, a)
	if err != nil {
		return false, err
	}
	fb, err := FromNet(m, b)
	if err != nil {
		return false, err
	}
	for i := range fa {
		if fa[i] != fb[i] {
			return false, nil
		}
	}
	return true, nil
}
