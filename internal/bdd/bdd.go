// Package bdd implements reduced ordered binary decision diagrams
// (ROBDDs) with hash-consing and an ITE operation cache. The library
// uses it to verify circuits FORMALLY — for all 2^n inputs at once —
// where exhaustive simulation stops being feasible:
//
//   - the hyperconcentrator netlist's valid-bit outputs are proved
//     equal to direct threshold ("at least k of n") specifications;
//   - the logic optimizer is proved semantics-preserving on whole
//     netlists.
//
// Threshold/rank functions are symmetric, so their BDDs have O(n²)
// nodes — exactly why this works for concentrator circuits.
package bdd

import "fmt"

// Ref is a node reference. The terminals are False = 0 and True = 1;
// canonical ROBDDs make equivalence checking pointer equality.
type Ref int32

// Terminal references.
const (
	False Ref = 0
	True  Ref = 1
)

type node struct {
	level  int32 // variable index; terminals use ^0
	lo, hi Ref
}

type triple struct{ f, g, h Ref }

// Manager owns a BDD node pool over a fixed variable order
// x0 < x1 < … < x{numVars−1}.
type Manager struct {
	numVars int
	nodes   []node
	unique  map[node]Ref
	iteMemo map[triple]Ref
}

// New returns a manager for numVars variables.
func New(numVars int) (*Manager, error) {
	if numVars < 0 {
		return nil, fmt.Errorf("bdd: negative variable count %d", numVars)
	}
	m := &Manager{
		numVars: numVars,
		nodes:   make([]node, 2, 1024),
		unique:  map[node]Ref{},
		iteMemo: map[triple]Ref{},
	}
	m.nodes[False] = node{level: -1}
	m.nodes[True] = node{level: -1}
	return m, nil
}

// NumVars returns the variable count.
func (m *Manager) NumVars() int { return m.numVars }

// Size returns the number of live nodes (including the two terminals).
func (m *Manager) Size() int { return len(m.nodes) }

// Var returns the BDD of variable i.
func (m *Manager) Var(i int) Ref {
	if i < 0 || i >= m.numVars {
		panic(fmt.Sprintf("bdd: variable %d out of range [0,%d)", i, m.numVars))
	}
	return m.mk(int32(i), False, True)
}

// Const returns the terminal for v.
func (m *Manager) Const(v bool) Ref {
	if v {
		return True
	}
	return False
}

// mk returns the canonical node (level, lo, hi), applying the
// reduction rule lo == hi → lo.
func (m *Manager) mk(level int32, lo, hi Ref) Ref {
	if lo == hi {
		return lo
	}
	key := node{level: level, lo: lo, hi: hi}
	if r, ok := m.unique[key]; ok {
		return r
	}
	m.nodes = append(m.nodes, key)
	r := Ref(len(m.nodes) - 1)
	m.unique[key] = r
	return r
}

func (m *Manager) level(r Ref) int32 {
	if r <= True {
		return int32(m.numVars) // terminals sort below all variables
	}
	return m.nodes[r].level
}

// ITE computes if-then-else(f, g, h) — the universal connective.
func (m *Manager) ITE(f, g, h Ref) Ref {
	// Terminal cases.
	switch {
	case f == True:
		return g
	case f == False:
		return h
	case g == h:
		return g
	case g == True && h == False:
		return f
	}
	key := triple{f, g, h}
	if r, ok := m.iteMemo[key]; ok {
		return r
	}
	// Split on the top variable.
	top := m.level(f)
	if l := m.level(g); l < top {
		top = l
	}
	if l := m.level(h); l < top {
		top = l
	}
	f0, f1 := m.cofactors(f, top)
	g0, g1 := m.cofactors(g, top)
	h0, h1 := m.cofactors(h, top)
	lo := m.ITE(f0, g0, h0)
	hi := m.ITE(f1, g1, h1)
	r := m.mk(top, lo, hi)
	m.iteMemo[key] = r
	return r
}

func (m *Manager) cofactors(r Ref, level int32) (lo, hi Ref) {
	if r <= True || m.nodes[r].level != level {
		return r, r
	}
	return m.nodes[r].lo, m.nodes[r].hi
}

// Not returns ¬a.
func (m *Manager) Not(a Ref) Ref { return m.ITE(a, False, True) }

// And returns a ∧ b.
func (m *Manager) And(a, b Ref) Ref { return m.ITE(a, b, False) }

// Or returns a ∨ b.
func (m *Manager) Or(a, b Ref) Ref { return m.ITE(a, True, b) }

// Xor returns a ⊕ b.
func (m *Manager) Xor(a, b Ref) Ref { return m.ITE(a, m.Not(b), b) }

// Eval evaluates the function at a full variable assignment.
func (m *Manager) Eval(r Ref, assignment []bool) bool {
	if len(assignment) != m.numVars {
		panic(fmt.Sprintf("bdd: assignment has %d vars, manager %d", len(assignment), m.numVars))
	}
	for r > True {
		n := m.nodes[r]
		if assignment[n.level] {
			r = n.hi
		} else {
			r = n.lo
		}
	}
	return r == True
}

// SatCount returns the number of satisfying assignments of r over all
// numVars variables, as float64 (exact for < 2^53).
func (m *Manager) SatCount(r Ref) float64 {
	memo := map[Ref]float64{}
	var count func(r Ref, level int32) float64
	count = func(r Ref, level int32) float64 {
		// Scale for skipped levels handled by caller multiplication.
		if r == False {
			return 0
		}
		if r == True {
			return pow2(int32(m.numVars) - level)
		}
		if c, ok := memo[r]; ok {
			return c * pow2(m.nodes[r].level-level)
		}
		n := m.nodes[r]
		// #sat over variables [n.level, numVars): fixing x_{n.level}
		// to 0 or 1 leaves the cofactor counted over the suffix.
		c := count(n.lo, n.level+1) + count(n.hi, n.level+1)
		memo[r] = c
		return c * pow2(n.level-level)
	}
	return count(r, 0)
}

func pow2(e int32) float64 {
	v := 1.0
	for ; e > 0; e-- {
		v *= 2
	}
	return v
}

// Threshold returns the BDD of the symmetric function
// [at least k of the variables in vars are 1]. Its size is O(k·|vars|)
// — the reason concentrator control logic verifies cheaply.
func (m *Manager) Threshold(vars []int, k int) Ref {
	if k <= 0 {
		return True
	}
	if k > len(vars) {
		return False
	}
	// Dynamic programming from the last variable backwards:
	// f[j] = [at least j of the remaining suffix]. Process vars in
	// manager order for canonical construction.
	ordered := append([]int(nil), vars...)
	// insertion sort (vars lists are short)
	for i := 1; i < len(ordered); i++ {
		for j := i; j > 0 && ordered[j] < ordered[j-1]; j-- {
			ordered[j], ordered[j-1] = ordered[j-1], ordered[j]
		}
	}
	f := make([]Ref, k+1)
	f[0] = True
	for j := 1; j <= k; j++ {
		f[j] = False
	}
	for idx := len(ordered) - 1; idx >= 0; idx-- {
		x := m.Var(ordered[idx])
		for j := k; j >= 1; j-- {
			f[j] = m.ITE(x, f[j-1], f[j])
		}
	}
	return f[k]
}
