package bdd

import (
	"math/rand"
	"testing"

	"concentrators/internal/bitvec"
	"concentrators/internal/hyper"
	"concentrators/internal/logic"
	"concentrators/internal/shifter"
)

func TestTerminalsAndVars(t *testing.T) {
	m, err := New(3)
	if err != nil {
		t.Fatal(err)
	}
	if m.Const(true) != True || m.Const(false) != False {
		t.Error("terminals wrong")
	}
	x := m.Var(0)
	if !m.Eval(x, []bool{true, false, false}) || m.Eval(x, []bool{false, true, true}) {
		t.Error("Var evaluation wrong")
	}
	if m.NumVars() != 3 {
		t.Error("NumVars wrong")
	}
	if _, err := New(-1); err == nil {
		t.Error("negative var count accepted")
	}
}

func TestVarOutOfRangePanics(t *testing.T) {
	m, _ := New(2)
	defer func() {
		if recover() == nil {
			t.Fatal("Var(2) did not panic")
		}
	}()
	m.Var(2)
}

// Canonicity: boolean operations agree with truth tables, and equal
// functions get equal refs.
func TestBooleanOpsExhaustive(t *testing.T) {
	m, _ := New(3)
	a, b, c := m.Var(0), m.Var(1), m.Var(2)
	exprs := map[string]struct {
		ref Ref
		f   func(x, y, z bool) bool
	}{
		"and": {m.And(a, b), func(x, y, _ bool) bool { return x && y }},
		"or":  {m.Or(a, b), func(x, y, _ bool) bool { return x || y }},
		"xor": {m.Xor(a, c), func(x, _, z bool) bool { return x != z }},
		"not": {m.Not(b), func(_, y, _ bool) bool { return !y }},
		"ite": {m.ITE(a, b, c), func(x, y, z bool) bool {
			if x {
				return y
			}
			return z
		}},
		"demorgan": {m.Not(m.And(a, b)), func(x, y, _ bool) bool { return !(x && y) }},
	}
	for pat := 0; pat < 8; pat++ {
		as := []bool{pat&1 != 0, pat&2 != 0, pat&4 != 0}
		for name, e := range exprs {
			if m.Eval(e.ref, as) != e.f(as[0], as[1], as[2]) {
				t.Errorf("%s wrong at %v", name, as)
			}
		}
	}
	// Canonicity: ¬¬a == a; a∧b == b∧a structurally after ITE.
	if m.Not(m.Not(a)) != a {
		t.Error("double negation not canonical")
	}
	if m.And(a, b) != m.And(b, a) {
		t.Error("commuted AND not canonical")
	}
	if m.Or(m.And(a, b), m.And(a, m.Not(b))) != a {
		t.Error("Shannon expansion of a not canonical")
	}
}

func TestSatCount(t *testing.T) {
	m, _ := New(4)
	a, b := m.Var(0), m.Var(1)
	cases := []struct {
		ref  Ref
		want float64
	}{
		{True, 16},
		{False, 0},
		{a, 8},
		{m.And(a, b), 4},
		{m.Or(a, b), 12},
		{m.Xor(a, b), 8},
		{m.Var(3), 8},
	}
	for i, c := range cases {
		if got := m.SatCount(c.ref); got != c.want {
			t.Errorf("case %d: SatCount = %v, want %v", i, got, c.want)
		}
	}
}

func TestThreshold(t *testing.T) {
	m, _ := New(5)
	vars := []int{0, 1, 2, 3, 4}
	for k := 0; k <= 6; k++ {
		ref := m.Threshold(vars, k)
		for pat := 0; pat < 32; pat++ {
			as := make([]bool, 5)
			ones := 0
			for i := range as {
				as[i] = pat&(1<<uint(i)) != 0
				if as[i] {
					ones++
				}
			}
			if m.Eval(ref, as) != (ones >= k) {
				t.Fatalf("Threshold k=%d wrong at %05b", k, pat)
			}
		}
	}
	// Symmetric-function size: threshold BDDs stay small.
	big, _ := New(64)
	all := make([]int, 64)
	for i := range all {
		all[i] = i
	}
	big.Threshold(all, 32)
	if big.Size() > 64*33+2 {
		t.Errorf("threshold(64,32) has %d nodes; symmetric bound exceeded", big.Size())
	}
}

// FromNet agrees with concrete evaluation on random small netlists.
func TestFromNetMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 20; trial++ {
		net := logic.New()
		in := net.Inputs("x", 6)
		sigs := append([]logic.Signal(nil), in...)
		for g := 0; g < 30; g++ {
			a := sigs[rng.Intn(len(sigs))]
			b := sigs[rng.Intn(len(sigs))]
			switch rng.Intn(4) {
			case 0:
				sigs = append(sigs, net.And(a, b))
			case 1:
				sigs = append(sigs, net.Or(a, b))
			case 2:
				sigs = append(sigs, net.Xor(a, b))
			default:
				sigs = append(sigs, net.Not(a))
			}
		}
		net.MarkOutput("y", sigs[len(sigs)-1])
		m, _ := New(6)
		refs, err := FromNet(m, net)
		if err != nil {
			t.Fatal(err)
		}
		for pat := 0; pat < 64; pat++ {
			as := make([]bool, 6)
			for i := range as {
				as[i] = pat&(1<<uint(i)) != 0
			}
			if m.Eval(refs[0], as) != net.Eval(as)[0] {
				t.Fatalf("trial %d: symbolic/concrete divergence at %06b", trial, pat)
			}
		}
	}
}

// FORMAL proof that the optimizer preserves semantics, beyond sampling:
// canonical BDDs of original and optimized netlists must coincide.
func TestOptimizerFormallyEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 15; trial++ {
		net := logic.New()
		in := net.Inputs("x", 8)
		sigs := append([]logic.Signal(nil), in...)
		sigs = append(sigs, net.Const(true), net.Const(false))
		for g := 0; g < 60; g++ {
			a := sigs[rng.Intn(len(sigs))]
			b := sigs[rng.Intn(len(sigs))]
			switch rng.Intn(5) {
			case 0:
				sigs = append(sigs, net.And(a, b))
			case 1:
				sigs = append(sigs, net.Or(a, b))
			case 2:
				sigs = append(sigs, net.Xor(a, b))
			case 3:
				sigs = append(sigs, net.Not(a))
			default:
				sigs = append(sigs, net.Mux(a, b, sigs[rng.Intn(len(sigs))]))
			}
		}
		for o := 0; o < 3; o++ {
			net.MarkOutput("y", sigs[len(sigs)-1-o])
		}
		eq, err := Equivalent(net, net.Optimize())
		if err != nil {
			t.Fatal(err)
		}
		if !eq {
			t.Fatal("optimizer changed semantics (formal check)")
		}
	}
}

func TestEquivalentDetectsDifference(t *testing.T) {
	a := logic.New()
	x := a.Input("x")
	y := a.Input("y")
	a.MarkOutput("o", a.And(x, y))
	b := logic.New()
	x2 := b.Input("x")
	y2 := b.Input("y")
	b.MarkOutput("o", b.Or(x2, y2))
	eq, err := Equivalent(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Error("AND declared equivalent to OR")
	}
	c := logic.New()
	c.Input("x")
	c.MarkOutput("o", c.Const(true))
	if _, err := Equivalent(a, c); err == nil {
		t.Error("arity mismatch accepted")
	}
}

// THE FORMAL HEADLINE: the hyperconcentrator netlist's valid-bit
// outputs equal threshold functions — output o carries a valid message
// iff at least o+1 inputs are valid — proved over ALL 2^n valid
// patterns (with payload inputs fixed) for n = 32, far beyond
// exhaustive simulation.
func TestHyperValidOutputsAreThresholdsFormally(t *testing.T) {
	for _, n := range []int{8, 16, 32} {
		nl, err := hyper.BuildNetlist(n)
		if err != nil {
			t.Fatal(err)
		}
		m, err := New(2 * n) // valid vars then data vars
		if err != nil {
			t.Fatal(err)
		}
		refs, err := FromNet(m, nl.Net)
		if err != nil {
			t.Fatal(err)
		}
		validVars := make([]int, n)
		for i := range validVars {
			validVars[i] = i
		}
		for o := 0; o < n; o++ {
			got := refs[2*o] // valid.o output
			want := m.Threshold(validVars, o+1)
			if got != want {
				t.Fatalf("n=%d: output %d valid bit is NOT the ≥%d threshold", n, o, o+1)
			}
		}
	}
}

// The hardwired shifter is formally the rotation permutation.
func TestShifterFormallyARotation(t *testing.T) {
	w, amount := 8, 3
	hw, err := shifter.BuildHardwired(w, amount)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := New(w)
	refs, err := FromNet(m, hw)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < w; j++ {
		src := ((j-amount)%w + w) % w
		if refs[j] != m.Var(src) {
			t.Fatalf("output %d is not input %d", j, src)
		}
	}
}

// Cross-check SatCount against bitvec on a threshold function.
func TestSatCountThreshold(t *testing.T) {
	n, k := 10, 4
	m, _ := New(n)
	vars := make([]int, n)
	for i := range vars {
		vars[i] = i
	}
	ref := m.Threshold(vars, k)
	want := 0
	for pat := 0; pat < 1<<uint(n); pat++ {
		v := bitvec.New(n)
		for i := 0; i < n; i++ {
			v.Set(i, pat&(1<<uint(i)) != 0)
		}
		if v.Count() >= k {
			want++
		}
	}
	if got := m.SatCount(ref); got != float64(want) {
		t.Errorf("SatCount = %v, want %d", got, want)
	}
}

// Full formal specification of the hyperconcentrator chip, payload path
// included: output o's data line equals
//
//	OR_i ( valid_i ∧ [#valid among inputs 0..i−1 = o] ∧ data_i )
//
// — the stable-concentration contract — proved for every one of the
// 2^{2n} (valid, data) combinations at n = 8 and 16.
func TestHyperPayloadPathFormally(t *testing.T) {
	for _, n := range []int{8, 16} {
		nl, err := hyper.BuildNetlist(n)
		if err != nil {
			t.Fatal(err)
		}
		m, err := New(2 * n)
		if err != nil {
			t.Fatal(err)
		}
		refs, err := FromNet(m, nl.Net)
		if err != nil {
			t.Fatal(err)
		}
		for o := 0; o < n; o++ {
			spec := False
			for i := 0; i < n; i++ {
				prefix := make([]int, i)
				for j := range prefix {
					prefix[j] = j
				}
				// exactly o valids before input i
				var exactlyO Ref
				if i == 0 {
					exactlyO = m.Const(o == 0)
				} else {
					atLeastO := m.Threshold(prefix, o)
					atLeastO1 := m.Threshold(prefix, o+1)
					exactlyO = m.And(atLeastO, m.Not(atLeastO1))
				}
				term := m.And(m.Var(i), m.And(exactlyO, m.Var(n+i)))
				spec = m.Or(spec, term)
			}
			// The payload line is specified only while the output's
			// valid bit is asserted (idle wires carry don't-cares), so
			// compare gated by valid_out — note spec ⇒ valid_out, since
			// a rank-o message exists iff k ≥ o+1.
			gated := m.And(refs[2*o], refs[2*o+1])
			if gated != spec {
				t.Fatalf("n=%d: payload output %d does not match the stable-concentration spec", n, o)
			}
		}
	}
}
