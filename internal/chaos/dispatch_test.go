package chaos

import (
	"reflect"
	"testing"
)

// TestParallelPoolDispatchBitIdentical runs one seeded chaos schedule
// twice — sequential data plane vs speculative parallel replica
// dispatch — and requires bit-identical reports: same round records,
// same ledger, same regressions. Parallelism must only change
// wall-clock time, never a trajectory.
func TestParallelPoolDispatchBitIdentical(t *testing.T) {
	cfg := baseConfig(2026)
	events := mustSchedule(t, cfg)

	seq, err := Run(buildColumnsort, events, cfg)
	if err != nil {
		t.Fatal(err)
	}

	pcfg := cfg
	pcfg.Pool.Parallel = 4
	par, err := Run(buildColumnsort, events, pcfg)
	if err != nil {
		t.Fatal(err)
	}

	if len(par.Rounds) != len(seq.Rounds) {
		t.Fatalf("%d rounds vs %d", len(par.Rounds), len(seq.Rounds))
	}
	for i := range seq.Rounds {
		if !reflect.DeepEqual(par.Rounds[i], seq.Rounds[i]) {
			t.Fatalf("round %d diverges:\npar %+v\nseq %+v", i, par.Rounds[i], seq.Rounds[i])
		}
	}
	if !reflect.DeepEqual(par.Regressions, seq.Regressions) {
		t.Fatalf("regressions diverge:\npar %+v\nseq %+v", par.Regressions, seq.Regressions)
	}
	if !reflect.DeepEqual(par.Schedule, seq.Schedule) {
		t.Fatal("schedules diverge")
	}
}
