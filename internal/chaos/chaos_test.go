package chaos

import (
	"fmt"
	"testing"

	"concentrators/internal/core"
	"concentrators/internal/overload"
	"concentrators/internal/pool"
)

// buildColumnsort is the chaos fixture: 256→128 so that every chip
// fault class — including dead-chip bypasses, which cost a chip's port
// count in ε — degrades to a positive guarantee threshold.
func buildColumnsort() (core.FaultInjectable, error) {
	return core.NewColumnsortSwitchBeta(256, 128, 0.75)
}

func baseConfig(seed int64) Config {
	return Config{
		Replicas:    3,
		Rounds:      120,
		Load:        0.7,
		PayloadBits: 4,
		Seed:        seed,
		Faults:      3,
		Kills:       2,
		Corruptions: 2,
		MaxBER:      1e-2,
		Pool:        pool.Config{TripThreshold: 1, ProbeAfter: 1},
	}
}

func mustSchedule(t *testing.T, cfg Config) []Event {
	t.Helper()
	sw, err := buildColumnsort()
	if err != nil {
		t.Fatal(err)
	}
	events, err := GenerateSchedule(cfg.Seed, sw, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return events
}

func TestGenerateScheduleDeterministic(t *testing.T) {
	cfg := baseConfig(42)
	a := mustSchedule(t, cfg)
	b := mustSchedule(t, cfg)
	if len(a) == 0 {
		t.Fatal("empty schedule")
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	kills, revives, faults, corruptions := 0, 0, 0, 0
	for _, ev := range a {
		switch ev.Kind {
		case EventKill:
			kills++
			if ev.Replica != ActiveReplica {
				t.Fatalf("kill targets %d, want the active replica", ev.Replica)
			}
		case EventRevive:
			revives++
		case EventFault:
			faults++
		case EventCorruption:
			corruptions++
			w := ev.Wire
			if w.Until <= w.From || w.From != ev.Round {
				t.Fatalf("corruption burst window [%d,%d) not bounded at round %d", w.From, w.Until, ev.Round)
			}
			if w.BER <= 0 || w.BER > cfg.MaxBER {
				t.Fatalf("burst BER %g outside (0,%g]", w.BER, cfg.MaxBER)
			}
		}
		if ev.Round < 0 || ev.Round >= cfg.Rounds {
			t.Fatalf("event round %d outside [0,%d)", ev.Round, cfg.Rounds)
		}
	}
	if kills == 0 || faults == 0 || corruptions == 0 {
		t.Fatalf("schedule has %d kills, %d faults, %d corruptions — want all three", kills, faults, corruptions)
	}
	if revives > kills {
		t.Fatalf("%d revives for %d kills", revives, kills)
	}
}

func TestConfigValidation(t *testing.T) {
	sw, err := buildColumnsort()
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero replicas", func(c *Config) { c.Replicas = 0 }},
		{"zero rounds", func(c *Config) { c.Rounds = 0 }},
		{"negative load", func(c *Config) { c.Load = -0.1 }},
		{"load above one", func(c *Config) { c.Load = 1.5 }},
		{"zero payload", func(c *Config) { c.PayloadBits = 0 }},
		{"negative kills", func(c *Config) { c.Kills = -1 }},
		{"negative corruptions", func(c *Config) { c.Corruptions = -1 }},
		{"BER above one", func(c *Config) { c.MaxBER = 1.5 }},
	} {
		cfg := baseConfig(1)
		tc.mutate(&cfg)
		if _, err := GenerateSchedule(cfg.Seed, sw, cfg); err == nil {
			t.Errorf("%s: GenerateSchedule accepted invalid config", tc.name)
		}
		if _, err := Run(buildColumnsort, nil, cfg); err == nil {
			t.Errorf("%s: Run accepted invalid config", tc.name)
		}
	}
}

// TestChaosAcceptance is the PR's acceptance criterion: across ≥ 3
// seeded schedules with chip faults, mid-stream primary kills, and
// wire-corruption bursts (BER up to 1e-2), every round delivers at
// least ⌊α′m′⌋ messages for the live replica set's degraded contract,
// failover completes within the round that exposes the failure, and no
// corrupted payload is ever counted delivered.
func TestChaosAcceptance(t *testing.T) {
	totalTrips, totalCorrupted := 0, 0
	for _, seed := range []int64{7, 1987, 0xC0C0} {
		cfg := baseConfig(seed)
		events := mustSchedule(t, cfg)
		rep, err := Run(buildColumnsort, events, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(rep.Regressions) != 0 {
			t.Fatalf("seed %d: guarantee regressed:\n%v\nschedule: %v",
				seed, rep.Regressions, events)
		}
		if rep.Stats.Violations != 0 {
			t.Fatalf("seed %d: %d violated rounds", seed, rep.Stats.Violations)
		}
		// The schedule kills the primary mid-stream, so the arbiter
		// must have failed over — and every failover that exposed a
		// failure completed in-round (otherwise the round would have
		// been a regression above).
		if rep.Stats.Failovers == 0 {
			t.Fatalf("seed %d: no failovers despite kills", seed)
		}
		totalTrips += rep.Stats.Trips
		totalCorrupted += rep.Stats.CorruptedDeliveries
		if rep.Stats.Delivered+rep.Stats.CorruptedDeliveries < rep.Stats.Delivered {
			t.Fatalf("seed %d: inconsistent corruption accounting: %+v", seed, rep.Stats)
		}
		if len(rep.Rounds) != cfg.Rounds {
			t.Fatalf("seed %d: %d rounds recorded, want %d", seed, len(rep.Rounds), cfg.Rounds)
		}
	}
	// Not every seeded fault bites while its replica serves, but across
	// the seeds some must trip the breaker and exercise quarantine, and
	// some corruption burst must actually corrupt deliveries (all of
	// which were stripped, or the regression list would be non-empty).
	if totalTrips == 0 {
		t.Fatal("no breaker trips across any seed")
	}
	if totalCorrupted == 0 {
		t.Fatal("no corrupted deliveries across any seed — bursts never bit")
	}
}

// TestCorruptionBurstChaos isolates the data-plane failure mode: a
// corruption-only schedule against a spared pool must keep goodput at
// the contract bound every round (corrupted deliveries stripped, the
// round failed over in-round) and leave no wire quarantines behind
// once the bounded bursts end.
func TestCorruptionBurstChaos(t *testing.T) {
	cfg := baseConfig(21)
	cfg.Faults = 0
	cfg.Kills = 0
	cfg.Corruptions = 4
	events := mustSchedule(t, cfg)
	if len(events) == 0 {
		t.Fatal("no corruption events scheduled")
	}
	rep, err := Run(buildColumnsort, events, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Regressions) != 0 {
		t.Fatalf("goodput regressed under corruption bursts:\n%v", rep.Regressions)
	}
	if rep.Stats.CorruptedDeliveries == 0 {
		t.Fatal("bursts never corrupted a delivery")
	}
	corruptRounds := 0
	for _, rec := range rep.Rounds {
		if rec.Corrupted > 0 {
			corruptRounds++
			if !rec.FailedOver || rec.ServedBy < 0 {
				t.Fatalf("round %d corrupted %d deliveries without failing over in-round: %+v",
					rec.Round, rec.Corrupted, rec)
			}
		}
	}
	if corruptRounds == 0 {
		t.Fatal("no round recorded corruption")
	}
	// Ambient bursts are transient: no wire should be convicted.
	if rep.Stats.LinksQuarantined != 0 {
		t.Errorf("%d wires quarantined by bounded transient bursts", rep.Stats.LinksQuarantined)
	}
}

// TestStragglerChaosAcceptance is the gray-failure acceptance
// criterion: across ≥ 3 seeded schedules of bounded stall bursts
// (constant slowdown, heavy-tail jitter, degradation ramps) against
// the active replica, hedged dispatch keeps every round inside the
// deadline budget — zero per-round deadline-SLO regressions — while
// the delivery guarantee holds as usual.
func TestStragglerChaosAcceptance(t *testing.T) {
	totalStalled := 0
	for _, seed := range []int64{11, 1987, 0xFADE} {
		cfg := baseConfig(seed)
		cfg.Faults = 0
		cfg.Kills = 0
		cfg.Corruptions = 0
		cfg.Stalls = 5
		cfg.Deadline = 5
		cfg.CheckSLO = true
		events := mustSchedule(t, cfg)
		stalls := 0
		for _, ev := range events {
			if ev.Kind != EventTiming {
				t.Fatalf("seed %d: non-timing event %v in a stall-only schedule", seed, ev)
			}
			f := ev.Stall
			if f.From != ev.Round || f.Until <= f.From || f.Until > cfg.Rounds {
				t.Fatalf("seed %d: stall window [%d,%d) not bounded at round %d", seed, f.From, f.Until, ev.Round)
			}
			stalls++
		}
		if stalls < 3 {
			t.Fatalf("seed %d: only %d stall bursts scheduled", seed, stalls)
		}
		rep, err := Run(buildColumnsort, events, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(rep.Regressions) != 0 {
			t.Fatalf("seed %d: deadline SLO regressed:\n%v\nschedule: %v",
				seed, rep.Regressions, events)
		}
		if rep.Stats.DeadlineMissed != 0 {
			t.Fatalf("seed %d: %d deliveries missed the deadline", seed, rep.Stats.DeadlineMissed)
		}
		if rep.Stats.Hedges == 0 || rep.Stats.HedgeWins == 0 {
			t.Fatalf("seed %d: stalls absorbed without hedging (%d hedges, %d wins) — the scenario did not bite",
				seed, rep.Stats.Hedges, rep.Stats.HedgeWins)
		}
		for _, rec := range rep.Rounds {
			if rec.Latency > cfg.Deadline {
				t.Fatalf("seed %d round %d: served at latency %d past the %d-round budget yet unreported",
					seed, rec.Round, rec.Latency, cfg.Deadline)
			}
			totalStalled += rec.DeadlineMissed
		}
	}
	if totalStalled != 0 {
		t.Fatalf("%d deliveries missed deadlines across seeds", totalStalled)
	}
}

// TestStragglerChaosUnhedged: the control for the acceptance test —
// the same stall schedules against a pool with hedging disabled must
// report deadline-SLO regressions (proving the bursts actually bite
// and the harness actually checks).
func TestStragglerChaosUnhedged(t *testing.T) {
	cfg := baseConfig(11)
	cfg.Faults = 0
	cfg.Kills = 0
	cfg.Corruptions = 0
	cfg.Stalls = 5
	cfg.Deadline = 5
	cfg.CheckSLO = true
	// A single replica has no spare to hedge to (the runner only
	// defaults hedging on for ≥ 2), so every stalled round must miss.
	cfg.Replicas = 1
	events := mustSchedule(t, cfg)
	rep, err := Run(buildColumnsort, events, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Regressions) == 0 || rep.Stats.DeadlineMissed == 0 {
		t.Fatalf("stall bursts against an unhedged pool missed no deadlines: %+v", rep.Stats)
	}
}

// TestChaosConfigSLOValidation: the satellite rejection — a zero
// deadline with SLO checking enabled is a misconfiguration, not a
// trivially passing run.
func TestChaosConfigSLOValidation(t *testing.T) {
	sw, err := buildColumnsort()
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero deadline with SLO enabled", func(c *Config) { c.CheckSLO = true }},
		{"negative deadline", func(c *Config) { c.Deadline = -3 }},
		{"negative stalls", func(c *Config) { c.Stalls = -1 }},
	} {
		cfg := baseConfig(1)
		tc.mutate(&cfg)
		if _, err := GenerateSchedule(cfg.Seed, sw, cfg); err == nil {
			t.Errorf("%s: GenerateSchedule accepted invalid config", tc.name)
		}
		if _, err := Run(buildColumnsort, nil, cfg); err == nil {
			t.Errorf("%s: Run accepted invalid config", tc.name)
		}
	}
}

// TestChaosReplayDeterministic: the same seed replays the exact same
// per-round outcomes.
func TestChaosReplayDeterministic(t *testing.T) {
	cfg := baseConfig(99)
	events := mustSchedule(t, cfg)
	a, err := Run(buildColumnsort, events, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(buildColumnsort, events, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rounds {
		ra, rb := a.Rounds[i], b.Rounds[i]
		if ra.Delivered != rb.Delivered || ra.ServedBy != rb.ServedBy ||
			ra.Shed != rb.Shed || ra.FailedOver != rb.FailedOver {
			t.Fatalf("round %d diverged between replays: %+v vs %+v", i, ra, rb)
		}
	}
	if a.Stats.Failovers != b.Stats.Failovers || a.Stats.Delivered != b.Stats.Delivered {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats, b.Stats)
	}
}

// TestScanLatencyInjection: probe-latency jitter delays re-admission
// but must not break the delivery guarantee (the spares carry it).
func TestScanLatencyInjection(t *testing.T) {
	cfg := baseConfig(5)
	cfg.ScanLatencyJitter = true
	cfg.Rounds = 160
	events := mustSchedule(t, cfg)
	sawLatency := false
	for _, ev := range events {
		if ev.Kind == EventScanLatency {
			sawLatency = true
		}
	}
	if !sawLatency {
		t.Fatal("no scan-latency events scheduled")
	}
	rep, err := Run(buildColumnsort, events, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Regressions) != 0 {
		t.Fatalf("guarantee regressed under scan latency:\n%v", rep.Regressions)
	}
}

// TestKillWithoutSpares: a 1-replica pool killed mid-stream must flag
// violated rounds (no spare to fail over to) — the harness reports the
// regression instead of masking it.
func TestKillWithoutSpares(t *testing.T) {
	cfg := baseConfig(3)
	cfg.Replicas = 1
	cfg.Faults = 0
	cfg.Kills = 1
	cfg.Corruptions = 0
	cfg.Rounds = 30
	events := mustSchedule(t, cfg)
	rep, err := Run(buildColumnsort, events, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Regressions) == 0 {
		t.Fatal("killing the only replica went unreported")
	}
}

// TestSurgeChaosAcceptance replays surge-burst schedules — bounded
// step / ramp / flash-crowd load multipliers against a closed-loop
// pool — across 3 seeds × 120 rounds and requires zero per-round
// goodput regressions: every served round must deliver at least
// min(admitted, ⌊α′m′⌋) under the effective (browned-out, AIMD-capped)
// contract. A retry-storm control on the same fabric shows what the
// closed loop is for: the open loop collapses metastably under a
// sustained 4× surge.
func TestSurgeChaosAcceptance(t *testing.T) {
	for _, seed := range []int64{7, 99, 2026} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			cfg := Config{
				Replicas:    2,
				Rounds:      120,
				Load:        0.5,
				PayloadBits: 4,
				Seed:        seed,
				Surges:      3,
				Pool: pool.Config{
					TripThreshold: 1, ProbeAfter: 1,
					Overload: &overload.Config{},
				},
			}
			events := mustSchedule(t, cfg)
			surges := 0
			for _, ev := range events {
				if ev.Kind == EventSurge {
					surges++
					if ev.Surge.Until <= ev.Surge.From {
						t.Errorf("unbounded surge burst: %v", ev)
					}
				}
			}
			if surges != 3 {
				t.Fatalf("scheduled %d surge bursts, want 3", surges)
			}
			rep, err := Run(buildColumnsort, events, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range rep.Regressions {
				t.Errorf("regression: %s", r)
			}
			shed := 0
			for _, rec := range rep.Rounds {
				shed += rec.Shed
			}
			if shed == 0 {
				t.Error("surge bursts never exceeded admission — schedule too weak")
			}
		})
	}

	// Retry-storm control: the same seed, the same sustained 4× surge —
	// the open loop (static gate, synchronized retries) collapses to
	// zero goodput while the closed loop holds the threshold.
	t.Run("retry-storm-control", func(t *testing.T) {
		surge := overload.NewPlane(1)
		if err := surge.Add(overload.Fault{Mode: overload.Sustained, Factor: 4, From: 20}); err != nil {
			t.Fatal(err)
		}
		session := func(closed bool) *pool.OverloadSessionStats {
			sw, err := core.NewColumnsortSwitchBeta(64, 16, 0.75)
			if err != nil {
				t.Fatal(err)
			}
			var pc pool.Config
			sc := pool.OverloadSessionConfig{
				Rounds: 240, Load: 0.25, PayloadBits: 4, Seed: 42, Deadline: 8, Surge: surge,
			}
			if closed {
				pc.Overload = &overload.Config{BacklogFactor: 4}
				sc.Retry = &overload.RetryConfig{Budget: 0.01, BackoffBase: 1, BackoffCap: 2, Burst: 2}
				sc.CoDel = &overload.CoDelConfig{Target: 2, Interval: 4}
			}
			p, err := pool.New(pc, sw)
			if err != nil {
				t.Fatal(err)
			}
			st, err := pool.RunOverloadSession(p, sc)
			if err != nil {
				t.Fatal(err)
			}
			return st
		}
		lastHalf := func(st *pool.OverloadSessionStats) int {
			sum := 0
			for _, g := range st.GoodputPerRound[120:] {
				sum += g
			}
			return sum
		}
		open, closed := lastHalf(session(false)), lastHalf(session(true))
		const thr = 15
		if open > thr*120/2 {
			t.Errorf("open loop did not collapse: %d on-time deliveries in the last 120 rounds", open)
		}
		if closed < thr*120*9/10 {
			t.Errorf("closed loop lost the threshold: %d on-time deliveries in the last 120 rounds", closed)
		}
	})
}

// crashConfig is the crash-restart fixture: control-plane kills (half
// of them tearing the in-flight checkpoint append) plus rolling
// drain/rejoin maintenance, with the closed admission loop live so the
// checkpoints carry AIMD/brownout and client-backlog state worth
// losing.
func crashConfig(seed int64) Config {
	return Config{
		Replicas:    3,
		Rounds:      120,
		Load:        0.7,
		PayloadBits: 4,
		Seed:        seed,
		Crashes:     4,
		Drains:      3,
		Pool: pool.Config{
			TripThreshold: 1, ProbeAfter: 1,
			Overload: &overload.Config{BacklogFactor: 1},
		},
	}
}

// TestCrashChaosAcceptance is the pool-level durability acceptance
// run: 3 seeds × 120 rounds of controller crash-restarts (clean and
// torn tails) interleaved with rolling drain/rejoin maintenance, with
// zero guarantee regressions and the crash conservation law
// Stats.Delivered + DeliveredLost == TrueDelivered holding exactly —
// clean-tail recoveries lose nothing, each torn tail loses exactly the
// one round its surviving checkpoint predates.
func TestCrashChaosAcceptance(t *testing.T) {
	for _, seed := range []int64{7, 1987, 0xC0C0} {
		cfg := crashConfig(seed)
		events := mustSchedule(t, cfg)
		crashes, torn, drains := 0, 0, 0
		for _, ev := range events {
			switch ev.Kind {
			case EventCrash:
				crashes++
				if ev.TornFrac > 0 {
					torn++
				}
			case EventDrain:
				drains++
			}
		}
		if crashes != cfg.Crashes || torn == 0 || drains != cfg.Drains {
			t.Fatalf("seed %d: schedule has %d crashes (%d torn), %d drains, want %d with torn > 0, %d",
				seed, crashes, torn, drains, cfg.Crashes, cfg.Drains)
		}
		rep, err := Run(buildColumnsort, events, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(rep.Regressions) != 0 {
			t.Fatalf("seed %d: guarantee regressed across crash-restarts:\n%v\nschedule: %v",
				seed, rep.Regressions, events)
		}
		if rep.Stats.Violations != 0 {
			t.Fatalf("seed %d: %d violated rounds", seed, rep.Stats.Violations)
		}
		cr := rep.Crash
		if cr.Crashes != crashes || cr.SnapshotsRestored != crashes {
			t.Fatalf("seed %d: %d crashes, %d restores, want %d each", seed, cr.Crashes, cr.SnapshotsRestored, crashes)
		}
		if cr.DrainCycles != drains {
			t.Fatalf("seed %d: %d drain cycles completed, want %d", seed, cr.DrainCycles, drains)
		}
		if cr.SnapshotsWritten != cfg.Rounds {
			t.Fatalf("seed %d: %d checkpoints journaled over %d rounds", seed, cr.SnapshotsWritten, cfg.Rounds)
		}
		if cr.TornTails != torn || cr.TornBytesDiscarded == 0 {
			t.Fatalf("seed %d: %d torn tails (%d bytes), want %d tails", seed, cr.TornTails, cr.TornBytesDiscarded, torn)
		}
		// Exactly-once: each torn tail costs exactly its one stale round;
		// clean-tail crashes cost nothing.
		if cr.StaleRounds != cr.TornTails {
			t.Fatalf("seed %d: %d stale rounds from %d torn tails", seed, cr.StaleRounds, cr.TornTails)
		}
		if rep.Stats.Delivered+cr.DeliveredLost != cr.TrueDelivered {
			t.Fatalf("seed %d: crash conservation violated: delivered %d + lost %d != true %d",
				seed, rep.Stats.Delivered, cr.DeliveredLost, cr.TrueDelivered)
		}
		// Rejoined replicas re-enter through the probe path, never around
		// the breaker. A torn crash can roll the probe counter back one
		// round, so allow that much slack and no more.
		if rep.Stats.Probes < cr.DrainCycles-cr.TornTails {
			t.Fatalf("seed %d: %d probes for %d drain cycles (%d torn tails) — rejoin bypassed the breaker",
				seed, rep.Stats.Probes, cr.DrainCycles, cr.TornTails)
		}
		if cr.JournalBytes == 0 {
			t.Fatalf("seed %d: empty checkpoint journal", seed)
		}
	}
}

// TestCrashChaosUnjournaledControl is the experimental control: the
// identical crash schedules with the journal disabled demonstrably
// lose ledger (and, with the admission loop backed up, client backlog)
// — every incarnation restarts amnesiac, and only the harness-side
// loss accounting can reconcile the final ledger with ground truth.
func TestCrashChaosUnjournaledControl(t *testing.T) {
	lostBacklog := 0
	for _, seed := range []int64{7, 1987, 0xC0C0} {
		cfg := crashConfig(seed)
		cfg.Unjournaled = true
		cfg.Drains = 0
		events := mustSchedule(t, cfg)
		rep, err := Run(buildColumnsort, events, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		cr := rep.Crash
		if cr.Crashes != cfg.Crashes {
			t.Fatalf("seed %d: fired %d crashes, want %d", seed, cr.Crashes, cfg.Crashes)
		}
		if cr.SnapshotsWritten != 0 || cr.JournalBytes != 0 || cr.SnapshotsRestored != 0 {
			t.Fatalf("seed %d: unjournaled run touched a journal: %+v", seed, cr)
		}
		if cr.DeliveredLost == 0 || rep.Stats.Delivered >= cr.TrueDelivered {
			t.Fatalf("seed %d: unjournaled crashes lost nothing (delivered %d, true %d) — crashes did not bite",
				seed, rep.Stats.Delivered, cr.TrueDelivered)
		}
		if rep.Stats.Delivered+cr.DeliveredLost != cr.TrueDelivered {
			t.Fatalf("seed %d: loss accounting broken: delivered %d + lost %d != true %d",
				seed, rep.Stats.Delivered, cr.DeliveredLost, cr.TrueDelivered)
		}
		lostBacklog += cr.BacklogLost
	}
	if lostBacklog == 0 {
		t.Error("no seed lost client backlog — the overloaded control never had any to lose")
	}
}

// TestCrashChaosReplayDeterministic: a crash schedule replays
// bit-for-bit, recoveries included.
func TestCrashChaosReplayDeterministic(t *testing.T) {
	cfg := crashConfig(99)
	events := mustSchedule(t, cfg)
	a, err := Run(buildColumnsort, events, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(buildColumnsort, events, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Crash != b.Crash {
		t.Fatalf("crash records diverged: %+v vs %+v", a.Crash, b.Crash)
	}
	if a.Stats.Delivered != b.Stats.Delivered || a.Stats.Probes != b.Stats.Probes {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats, b.Stats)
	}
}
