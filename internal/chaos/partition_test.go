package chaos

import (
	"strings"
	"testing"

	"concentrators/internal/partition"
	"concentrators/internal/pool"
)

// splitBrainConfig is the partition-tolerance fixture: control-plane
// cuts rotating through all four window shapes, interleaved with
// journaled controller crash-restarts, against a lease-fenced
// 3-replica pool.
func splitBrainConfig(seed int64) Config {
	return Config{
		Replicas:    3,
		Rounds:      120,
		Load:        0.7,
		PayloadBits: 4,
		Seed:        seed,
		Partitions:  4,
		Crashes:     2,
		Pool:        pool.Config{TripThreshold: 1, ProbeAfter: 1},
	}
}

// TestSplitBrainChaosAcceptance is the partition-tolerance acceptance
// run: 3 seeds × 120 rounds of control-plane partitions (symmetric
// cuts outliving and inside the lease, flapping edges, arbiter
// isolation) interleaved with crash-restarts, with zero guarantee
// regressions, zero frames Delivered under a stale fencing token, and
// the Fenced conservation law
//
//	Stats.Delivered + Stats.Fenced + Stats.InFlightAcks
//	    + Crash.DeliveredLost == Partition.TrueServed
//
// holding exactly across incarnations.
func TestSplitBrainChaosAcceptance(t *testing.T) {
	for _, seed := range []int64{7, 1987, 0xC0C0} {
		cfg := splitBrainConfig(seed)
		events := mustSchedule(t, cfg)
		cuts, heals := 0, 0
		for _, ev := range events {
			switch ev.Kind {
			case EventPartition:
				cuts++
				c := ev.Cut
				if c.Until <= c.From || c.From != ev.Round || c.Until >= cfg.Rounds {
					t.Fatalf("seed %d: cut window [%d,%d) not bounded inside the run at round %d",
						seed, c.From, c.Until, ev.Round)
				}
			case EventHeal:
				heals++
			}
		}
		if cuts != cfg.Partitions || heals != cuts {
			t.Fatalf("seed %d: schedule has %d cuts, %d heals, want %d each", seed, cuts, heals, cfg.Partitions)
		}
		rep, err := Run(buildColumnsort, events, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(rep.Regressions) != 0 {
			t.Fatalf("seed %d: guarantee regressed across partitions:\n%v\nschedule: %v",
				seed, rep.Regressions, events)
		}
		if rep.Stats.Violations != 0 {
			t.Fatalf("seed %d: %d violated rounds", seed, rep.Stats.Violations)
		}
		pr := rep.Partition
		if pr.Partitions != cuts || pr.Heals != heals {
			t.Fatalf("seed %d: fired %d cuts / %d heals, want %d / %d", seed, pr.Partitions, pr.Heals, cuts, heals)
		}
		// Zero dual-primary delivered frames: the lease may hand off, the
		// dark primary may keep serving, but nothing stale ever books.
		if rep.Stats.StaleDelivered != 0 || pr.StaleDelivered != 0 || pr.DualPrimaryRounds != 0 {
			t.Fatalf("seed %d: split brain leaked: %d stale delivered, %d dual-primary rounds",
				seed, rep.Stats.StaleDelivered, pr.DualPrimaryRounds)
		}
		// The lease-outliving cut must actually bite every seed: a
		// handoff happened and the dark primary's late acks were fenced.
		if pr.LeaseHandoffs == 0 {
			t.Fatalf("seed %d: no lease handoffs — the long cut never forced a failover", seed)
		}
		if pr.Fenced == 0 {
			t.Fatalf("seed %d: nothing fenced — the lapsed holder's late acks were never rejected", seed)
		}
		// Arbiter isolation must freeze the quorum, not flap breakers.
		if pr.FrozenRounds == 0 {
			t.Fatalf("seed %d: isolation window froze nothing", seed)
		}
		if rep.Stats.Trips != 0 {
			t.Fatalf("seed %d: %d breaker trips from pure visibility cuts", seed, rep.Stats.Trips)
		}
		if rep.Crash.Crashes != cfg.Crashes || rep.Crash.SnapshotsRestored != cfg.Crashes {
			t.Fatalf("seed %d: %d crashes, %d restores, want %d each",
				seed, rep.Crash.Crashes, rep.Crash.SnapshotsRestored, cfg.Crashes)
		}
		got := rep.Stats.Delivered + rep.Stats.Fenced + rep.Stats.InFlightAcks + rep.Crash.DeliveredLost
		if got != pr.TrueServed {
			t.Fatalf("seed %d: Fenced conservation violated: Delivered %d + Fenced %d + InFlight %d + lost %d = %d != TrueServed %d",
				seed, rep.Stats.Delivered, rep.Stats.Fenced, rep.Stats.InFlightAcks,
				rep.Crash.DeliveredLost, got, pr.TrueServed)
		}
	}
}

// TestSplitBrainAsymAcceptance swaps the flapping window for one-way
// ToReplica cuts: renewals vanish while acks keep flowing, so the
// holder must self-fence on its lapsed belief and the arbiter must
// hand off on the observed refusal — same zero-stale guarantee.
func TestSplitBrainAsymAcceptance(t *testing.T) {
	cfg := splitBrainConfig(11)
	cfg.AsymPartitions = true
	cfg.Crashes = 0
	events := mustSchedule(t, cfg)
	oneWay := 0
	for _, ev := range events {
		if ev.Kind == EventPartition && ev.Cut.Mode == partition.OneWay {
			oneWay++
			if ev.Cut.Dir != partition.ToReplica {
				t.Fatalf("asymmetric cut points %v, want ToReplica", ev.Cut.Dir)
			}
		}
	}
	if oneWay == 0 {
		t.Fatal("AsymPartitions scheduled no one-way cuts")
	}
	rep, err := Run(buildColumnsort, events, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Regressions) != 0 {
		t.Fatalf("guarantee regressed under asymmetric cuts:\n%v", rep.Regressions)
	}
	if rep.Stats.StaleDelivered != 0 || rep.Partition.DualPrimaryRounds != 0 {
		t.Fatalf("asymmetric split brain leaked: %+v", rep.Partition)
	}
	// Both the symmetric long cut and the one-way cut force handoffs.
	if rep.Partition.LeaseHandoffs < 2 {
		t.Fatalf("only %d lease handoffs — the one-way cut never forced the self-fence path", rep.Partition.LeaseHandoffs)
	}
	got := rep.Stats.Delivered + rep.Stats.Fenced + rep.Stats.InFlightAcks
	if got != rep.Partition.TrueServed {
		t.Fatalf("Fenced conservation violated: %d != %d", got, rep.Partition.TrueServed)
	}
}

// TestSplitBrainUnfencedControl is the experimental control: the same
// partition schedules with the ledger's token check disabled (and the
// arbiter failing over eagerly on suspicion) must demonstrably
// double-deliver — dual-primary rounds happen and stale frames book
// Delivered — proving both that the cuts create genuine split brain
// and that the harness actually checks for it.
func TestSplitBrainUnfencedControl(t *testing.T) {
	doubled := false
	for _, seed := range []int64{7, 1987, 0xC0C0} {
		cfg := splitBrainConfig(seed)
		cfg.Crashes = 0
		cfg.Unfenced = true
		events := mustSchedule(t, cfg)
		rep, err := Run(buildColumnsort, events, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		pr := rep.Partition
		if pr.StaleDelivered == 0 || pr.DualPrimaryRounds == 0 {
			t.Fatalf("seed %d: unfenced control stayed clean (%d stale, %d dual-primary rounds) — cuts did not bite",
				seed, pr.StaleDelivered, pr.DualPrimaryRounds)
		}
		if rep.Stats.Fenced != 0 {
			t.Fatalf("seed %d: unfenced control fenced %d frames", seed, rep.Stats.Fenced)
		}
		// Unfenced, everything physically served books Delivered —
		// duplicates included, which is exactly the defect.
		if got := rep.Stats.Delivered + rep.Stats.InFlightAcks; got != pr.TrueServed {
			t.Fatalf("seed %d: unfenced ledger %d != TrueServed %d", seed, got, pr.TrueServed)
		}
		if pr.TrueServed > rep.Stats.Admitted {
			doubled = true
		}
	}
	if !doubled {
		t.Fatal("no seed served more frames than it admitted — no double delivery demonstrated")
	}
}

// TestPartitionScheduleDeterminism: partition schedules replay
// bit-for-bit — cut windows, shapes, directions and all.
func TestPartitionScheduleDeterminism(t *testing.T) {
	cfg := splitBrainConfig(42)
	cfg.AsymPartitions = true
	a := mustSchedule(t, cfg)
	b := mustSchedule(t, cfg)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("schedule lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	ra, err := Run(buildColumnsort, a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Run(buildColumnsort, b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Partition != rb.Partition {
		t.Fatalf("partition records diverged: %+v vs %+v", ra.Partition, rb.Partition)
	}
	if ra.Stats.Delivered != rb.Stats.Delivered || ra.Stats.Fenced != rb.Stats.Fenced {
		t.Fatalf("ledgers diverged: %+v vs %+v", ra.Stats, rb.Stats)
	}
}

// TestChaosMembershipValidation is the validation-gap satellite: event
// combinations that can schedule two membership events for the same
// replica in the same round are misconfigurations, rejected with an
// error that says so.
func TestChaosMembershipValidation(t *testing.T) {
	sw, err := buildColumnsort()
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name    string
		mutate  func(*Config)
		wantMsg string
	}{
		{
			"kills with drains",
			func(c *Config) { c.Kills, c.Drains = 1, 1 },
			"two membership events for the same replica in the same round",
		},
		{
			"multiple drains on a single replica",
			func(c *Config) { c.Replicas, c.Faults, c.Kills, c.Corruptions, c.Drains = 1, 0, 0, 0, 3 },
			"two membership events for the same replica in the same round",
		},
		{
			"partitions with kills",
			func(c *Config) { c.Partitions, c.Kills = 2, 1 },
			"partitions combine only with Crashes and Surges",
		},
		{
			"partitions with drains",
			func(c *Config) { c.Partitions, c.Kills, c.Drains = 2, 0, 1 },
			"partitions combine only with Crashes and Surges",
		},
		{
			"partitions with chip faults",
			func(c *Config) { c.Partitions, c.Kills = 2, 0 },
			"invisible to the quarantine machinery",
		},
		{
			"partitions without quorum",
			func(c *Config) { c.Replicas, c.Faults, c.Kills, c.Corruptions, c.Partitions = 2, 0, 0, 0, 2 },
			"≥ 3 replicas for a quorum majority",
		},
		{
			"unfenced without partitions",
			func(c *Config) { c.Faults, c.Kills, c.Corruptions, c.Unfenced = 0, 0, 0, true },
			"needs Partitions > 0",
		},
		{
			"asymmetric shapes without partitions",
			func(c *Config) { c.Faults, c.Kills, c.Corruptions, c.AsymPartitions = 0, 0, 0, true },
			"needs Partitions > 0",
		},
		{
			"negative partitions",
			func(c *Config) { c.Partitions = -1 },
			"negative event counts",
		},
		{
			"negative lease",
			func(c *Config) { c.LeaseRounds = -4 },
			"negative lease duration",
		},
	} {
		cfg := baseConfig(1)
		tc.mutate(&cfg)
		_, err := GenerateSchedule(cfg.Seed, sw, cfg)
		if err == nil {
			t.Errorf("%s: GenerateSchedule accepted invalid config", tc.name)
		} else if !strings.Contains(err.Error(), tc.wantMsg) {
			t.Errorf("%s: error %q does not explain %q", tc.name, err, tc.wantMsg)
		}
		if _, err := Run(buildColumnsort, nil, cfg); err == nil {
			t.Errorf("%s: Run accepted invalid config", tc.name)
		}
	}
}
