package chaos

import (
	"testing"

	"concentrators/internal/partition"
	"concentrators/internal/pool"
)

// FuzzPartitionSchedule feeds arbitrary geometry — seeds, round
// counts, partition counts, lease durations, shape toggles — to
// GenerateSchedule. The invariants for every accepted config: never
// panic, every generated cut validates and heals strictly inside the
// run with its paired EventHeal exactly at the window end, windows
// never overlap, asymmetric cuts are directionally consistent, and
// the whole schedule replays bit-for-bit from its seed.
func FuzzPartitionSchedule(f *testing.F) {
	f.Add(int64(1), 120, 4, 0, false, false)
	f.Add(int64(1987), 120, 4, 8, true, false)
	f.Add(int64(0xC0C0), 240, 8, 3, false, true)
	f.Add(int64(-5), 40, 1, 1, true, true)
	f.Add(int64(0), 7, 2, 20, false, false)
	f.Fuzz(func(t *testing.T, seed int64, rounds, partitions, leaseRounds int, asym, unfenced bool) {
		cfg := Config{
			Replicas:       3,
			Rounds:         rounds,
			Load:           0.5,
			PayloadBits:    4,
			Seed:           seed,
			Partitions:     partitions,
			LeaseRounds:    leaseRounds,
			AsymPartitions: asym,
			Unfenced:       unfenced,
			Pool:           pool.Config{TripThreshold: 1, ProbeAfter: 1},
		}
		sw, err := buildColumnsort()
		if err != nil {
			t.Fatal(err)
		}
		events, err := GenerateSchedule(cfg.Seed, sw, cfg)
		if err != nil {
			return // rejected configs are fine; panics and bad schedules are not
		}
		replay, err := GenerateSchedule(cfg.Seed, sw, cfg)
		if err != nil || len(replay) != len(events) {
			t.Fatalf("schedule did not replay: %d events then %d (err %v)", len(events), len(replay), err)
		}
		healAt := map[int]int{} // heal round → heals scheduled there
		for _, ev := range events {
			if ev.Kind == EventHeal {
				healAt[ev.Round]++
			}
		}
		lastUntil := -1
		for i, ev := range events {
			if events[i] != replay[i] {
				t.Fatalf("event %d diverged on replay: %v vs %v", i, events[i], replay[i])
			}
			if ev.Kind != EventPartition {
				continue
			}
			c := ev.Cut
			if c.Mode != partition.ArbiterIsolation {
				// ActiveReplica resolves at fire time; validate the rest.
				c.Replica = 0
			}
			if err := c.Validate(); err != nil {
				t.Fatalf("generated cut invalid: %v (%v)", err, ev)
			}
			if c.From != ev.Round || c.Until <= c.From || c.Until >= cfg.Rounds {
				t.Fatalf("cut window [%d,%d) not bounded inside %d rounds at round %d",
					c.From, c.Until, cfg.Rounds, ev.Round)
			}
			if healAt[c.Until] == 0 {
				t.Fatalf("cut [%d,%d) has no EventHeal at its window end", c.From, c.Until)
			}
			healAt[c.Until]--
			if c.From <= lastUntil {
				t.Fatalf("cut [%d,%d) overlaps the previous window ending %d", c.From, c.Until, lastUntil)
			}
			lastUntil = c.Until
			if c.Mode == partition.OneWay && c.Dir != partition.ToReplica {
				t.Fatalf("asymmetric cut points %v, want ToReplica on every replay", c.Dir)
			}
			if asym && c.Mode == partition.Flapping {
				t.Fatalf("AsymPartitions schedule still contains a flapping window: %v", ev)
			}
		}
		for round, n := range healAt {
			if n != 0 {
				t.Fatalf("%d orphan heal events at round %d", n, round)
			}
		}
	})
}
