// Package chaos is a deterministic chaos harness for the replicated
// concentrator pool: it replays seeded schedules of chip faults,
// mid-stream replica kills and revivals, bounded wire-corruption
// bursts, bounded gray-failure stall bursts, and scan-latency
// injections against an internal/pool switch pool while Bernoulli
// traffic runs, and checks — round by round — that the delivery
// guarantee never regresses below the degraded contract of the live
// replica set, that no payload the pool counts delivered was corrupted
// in flight, and (with CheckSLO) that no delivery misses its deadline
// budget.
//
// Determinism is the point: a Schedule is derived entirely from a seed
// and the pool geometry, so a guarantee regression found in CI replays
// bit-for-bit from its seed. Kill events target the replica that is
// *active when the event fires* (Replica = ActiveReplica), which is
// what makes them mid-stream primary kills rather than spare kills.
//
// The harness spaces destructive events far enough apart for the
// pool's detect–quarantine–probe–repair loop to complete between
// failures, so at every round at least one replica serves a contract it
// actually satisfies; any round the pool flags as violated is therefore
// a real regression of the failover or degradation machinery, not an
// artifact of the schedule.
package chaos

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math/rand"
	"sort"

	"concentrators/internal/byzantine"
	"concentrators/internal/core"
	"concentrators/internal/journal"
	"concentrators/internal/link"
	"concentrators/internal/overload"
	"concentrators/internal/partition"
	"concentrators/internal/pool"
	"concentrators/internal/seedrand"
	"concentrators/internal/switchsim"
	"concentrators/internal/timing"
)

// EventKind selects a chaos event type.
type EventKind int

// The chaos event kinds.
const (
	// EventFault injects a chip fault into a replica's fault plane.
	EventFault EventKind = iota
	// EventKill powers a replica off mid-stream.
	EventKill
	// EventRevive swaps the killed replica's board: clean plane,
	// re-admission via a half-open probe scan.
	EventRevive
	// EventScanLatency changes the pool's probe-scan latency.
	EventScanLatency
	// EventCorruption injects a bounded wire-corruption burst into a
	// replica's corruption plane (the fault's From/Until window ends
	// the burst on its own).
	EventCorruption
	// EventTiming injects a bounded gray-failure stall (constant
	// slowdown, heavy-tail jitter, or degradation ramp) into a replica's
	// timing plane. Like corruption bursts, the fault's From/Until
	// window ends the stall on its own; unlike them, the replica stays
	// functionally perfect throughout — only hedged dispatch and the
	// deadline-SLO ledger can see it.
	EventTiming
	// EventSurge injects a bounded offered-load surge (step, ramp, or
	// flash-crowd spike) into the traffic generator: the fabric stays
	// perfect, the clients misbehave. The fault's From/Until window
	// ends the surge on its own; admission control and — when
	// Pool.Overload is set — the closed loop absorb it.
	EventSurge
	// EventDrain checkpoints a replica's control plane and takes it out
	// of rotation for a maintenance restart (the controller-state wipe
	// pool.Drain models). The paired EventRejoin restores it.
	EventDrain
	// EventRejoin restores the drained replica from its checkpoint and
	// re-admits it through the standard half-open probe path.
	EventRejoin
	// EventCrash kills the pool's controller process mid-stream: a new
	// controller is built over the same silicon and restored from the
	// round-granular checkpoint journal (events with TornFrac > 0 also
	// tear the tail of the checkpoint append that was in flight). With
	// Config.Unjournaled the restart instead comes up stateless and
	// every ledger and backlog dies with the process — the experimental
	// control demonstrating that crashes bite.
	EventCrash
	// EventPartition cuts control-plane visibility for a bounded round
	// window: a symmetric cut, a one-way link, a flapping edge, or full
	// arbiter isolation (Event.Cut). The data plane keeps delivering —
	// only what the arbiter and the lease machinery can *see* changes.
	// Every partition is paired with an EventHeal at its window end.
	EventPartition
	// EventHeal restores full control-plane visibility: buffered acks
	// flush and take their fencing verdict against the current token.
	EventHeal
	// EventByzantine turns the replica serving when the event fires into
	// a liar for a bounded round window (Event.Behavior): it misroutes
	// acks, replays spent frames, fabricates acks it holds no key for,
	// or equivocates its health report. The silicon stays perfect — only
	// claims and reports lie — and the pool runs with frame provenance,
	// witness audits and the arbiter cross-check armed (unless the
	// UnverifiedProvenance control blinds the receiving edge).
	EventByzantine
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case EventFault:
		return "fault"
	case EventKill:
		return "kill"
	case EventRevive:
		return "revive"
	case EventScanLatency:
		return "scan-latency"
	case EventCorruption:
		return "corruption"
	case EventTiming:
		return "timing"
	case EventSurge:
		return "surge"
	case EventDrain:
		return "drain"
	case EventRejoin:
		return "rejoin"
	case EventCrash:
		return "crash-restart"
	case EventPartition:
		return "partition"
	case EventHeal:
		return "heal"
	case EventByzantine:
		return "byzantine"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// ActiveReplica as an Event.Replica targets whichever replica is the
// pool's primary when the event fires.
const ActiveReplica = -1

// Event is one scheduled chaos action.
type Event struct {
	// Round is when the event fires (before the round's traffic).
	Round int
	// Kind is the action.
	Kind EventKind
	// Replica is the target index, or ActiveReplica.
	Replica int
	// Fault is the injected chip fault (EventFault only).
	Fault core.ChipFault
	// Wire is the injected wire fault (EventCorruption only); its
	// From/Until round window bounds the burst.
	Wire link.WireFault
	// Stall is the injected timing fault (EventTiming only); its
	// From/Until round window bounds the stall.
	Stall timing.Fault
	// Surge is the injected load fault (EventSurge only); its
	// From/Until round window bounds the surge.
	Surge overload.Fault
	// Cut is the injected control-plane partition (EventPartition
	// only); its From/Until round window bounds the cut, and the
	// paired EventHeal fires at Until.
	Cut partition.Fault
	// Behavior is the injected byzantine behavior fault (EventByzantine
	// only); its From/Until round window bounds the misbehavior.
	Behavior byzantine.Fault
	// Latency is the new probe-scan latency (EventScanLatency only).
	Latency int
	// TornFrac, for EventCrash, is the fraction of the in-flight
	// checkpoint append that reached the journal before the process
	// died; 0 means the crash fell between appends (clean tail).
	TornFrac float64
}

// String renders the event.
func (e Event) String() string {
	target := fmt.Sprintf("replica %d", e.Replica)
	if e.Replica == ActiveReplica {
		target = "active replica"
	}
	switch e.Kind {
	case EventFault:
		return fmt.Sprintf("round %d: fault %s on %s", e.Round, e.Fault, target)
	case EventCorruption:
		return fmt.Sprintf("round %d: corruption %s on %s", e.Round, e.Wire, target)
	case EventTiming:
		return fmt.Sprintf("round %d: stall %s on %s", e.Round, e.Stall, target)
	case EventSurge:
		return fmt.Sprintf("round %d: surge %s", e.Round, e.Surge)
	case EventScanLatency:
		return fmt.Sprintf("round %d: scan latency → %d", e.Round, e.Latency)
	case EventPartition:
		return fmt.Sprintf("round %d: partition %s", e.Round, e.Cut)
	case EventHeal:
		return fmt.Sprintf("round %d: partition heals", e.Round)
	case EventByzantine:
		return fmt.Sprintf("round %d: byzantine %s on %s", e.Round, e.Behavior.Mode, target)
	case EventCrash:
		if e.TornFrac > 0 {
			return fmt.Sprintf("round %d: crash-restart (torn tail, %.0f%% written)", e.Round, 100*e.TornFrac)
		}
		return fmt.Sprintf("round %d: crash-restart (clean tail)", e.Round)
	default:
		return fmt.Sprintf("round %d: %s %s", e.Round, e.Kind, target)
	}
}

// Config drives one chaos run.
type Config struct {
	// Replicas is the pool size (≥ 2 for failover coverage).
	Replicas int
	// Rounds is the number of traffic rounds to replay.
	Rounds int
	// Load is the per-input Bernoulli message probability.
	Load float64
	// PayloadBits is the payload length of each message.
	PayloadBits int
	// Seed drives both the schedule and the traffic.
	Seed int64
	// Faults and Kills bound the destructive events scheduled.
	Faults, Kills int
	// Corruptions bounds the wire-corruption bursts scheduled. Each
	// burst bit-flips the active replica's board-output wires for a
	// bounded round window, one replica at a time.
	Corruptions int
	// MaxBER caps the per-bit flip probability of corruption bursts.
	// 0 means the default (1e-2, the acceptance criterion's ceiling).
	MaxBER float64
	// Stalls bounds the gray-failure stall bursts scheduled. Each burst
	// slows the active replica's board for a bounded round window,
	// rotating through the constant / jitter / ramp shapes; the board
	// stays functionally perfect throughout.
	Stalls int
	// Surges bounds the offered-load surge bursts scheduled. Each burst
	// multiplies the traffic load for a bounded round window, rotating
	// through the step / ramp / flash-crowd shapes; the fabric stays
	// perfect throughout — admission control absorbs the excess.
	Surges int
	// MaxSurgeFactor caps the load multiplier of surge bursts.
	// 0 means the default (4, the acceptance criterion's
	// oversubscription). Must be > 1 when set.
	MaxSurgeFactor float64
	// Crashes bounds the control-plane crash-restarts scheduled. The
	// harness journals a full pool checkpoint every round through
	// internal/journal; each crash kills the controller and rebuilds it
	// over the same silicon from the last recoverable checkpoint, and
	// every other crash tears the tail of the in-flight append to
	// exercise torn-write recovery.
	Crashes int
	// Unjournaled disables the checkpoint journal while keeping the
	// crash events live: every crash then restarts the controller
	// stateless, losing ledgers and backlog — the experimental control.
	Unjournaled bool
	// Drains bounds the rolling drain/rejoin maintenance cycles
	// scheduled: checkpoint → drain (controller restart) → rejoin from
	// the checkpoint through the standard probe path, rotating through
	// the replicas.
	Drains int
	// Partitions bounds the control-plane partition windows scheduled.
	// Each window cuts what the arbiter can see — health observations,
	// probe results, acks — while the data plane keeps delivering; the
	// windows rotate through lease-outliving symmetric cuts, short
	// belief-covered cuts, flapping (or one-way, with AsymPartitions)
	// edges, and arbiter isolation, and every one heals with a paired
	// EventHeal. Requires ≥ 3 replicas (quorum) and enables the pool's
	// lease-fenced failover. Combines only with Crashes and Surges.
	Partitions int
	// AsymPartitions swaps the flapping window shape for one-way
	// ToReplica cuts: the arbiter keeps hearing a holder whose grants
	// vanish, forcing the self-fence + observed-refusal handoff path.
	AsymPartitions bool
	// LeaseRounds overrides the lease duration the runner hands to the
	// pool when Partitions > 0. 0 means the default (8 rounds).
	LeaseRounds int
	// Unfenced disables fencing-token checks at the ledger while
	// keeping the partition schedule live: the eager, suspicion-driven
	// arbiter then fails over into a genuine split brain and the
	// ledger double-counts — the experimental control demonstrating
	// what the fencing tokens prevent.
	Unfenced bool
	// Byzantine bounds the byzantine misbehavior windows scheduled. Each
	// window turns the replica serving at its open into a liar for a
	// bounded round span, rotating through the four modes (misroute /
	// replay / fabricated ack / equivocation); the pool runs with frame
	// provenance, witness cross-examination and the arbiter's
	// equivocation cross-check armed, and a forged or replayed claim
	// reaching Delivered is a regression. Requires ≥ 3 replicas (the
	// witness majority), enables the pool's lease-fenced failover so a
	// caught equivocator loses the lease, and combines only with
	// Crashes.
	Byzantine int
	// UnverifiedProvenance blinds the receiving edge while keeping the
	// byzantine schedule live: every claim books Delivered at face
	// value, so replays and fabrications double-count straight into the
	// ledger — the experimental control demonstrating what provenance
	// verification prevents.
	UnverifiedProvenance bool
	// CheckSLO, when true, books a regression for every round whose
	// deliveries missed the Deadline budget — the zero-deadline-SLO-
	// regression assertion of the straggler schedules. Requires a
	// positive Deadline.
	CheckSLO bool
	// Deadline is the per-round delivery budget in rounds handed to the
	// pool's SLO ledger. 0 disables deadline accounting (and is invalid
	// with CheckSLO set).
	Deadline int
	// ScanLatencyJitter, when true, schedules probe-latency injections.
	ScanLatencyJitter bool
	// Pool tunes the pool under test. TripThreshold defaults to 1 in
	// chaos runs so the detect–repair loop completes between events.
	Pool pool.Config
}

func (c Config) validate() error {
	switch {
	case c.Replicas < 1:
		return fmt.Errorf("chaos: need ≥ 1 replica, got %d", c.Replicas)
	case c.Rounds < 1:
		return fmt.Errorf("chaos: need ≥ 1 round, got %d", c.Rounds)
	case c.Load < 0 || c.Load > 1 || c.Load != c.Load:
		return fmt.Errorf("chaos: load %v outside [0,1]", c.Load)
	case c.PayloadBits < 1:
		return fmt.Errorf("chaos: payload must be ≥ 1 bit, got %d", c.PayloadBits)
	case c.Faults < 0 || c.Kills < 0 || c.Corruptions < 0 || c.Stalls < 0 || c.Surges < 0 || c.Crashes < 0 || c.Drains < 0 || c.Partitions < 0:
		return fmt.Errorf("chaos: negative event counts (%d faults, %d kills, %d corruptions, %d stalls, %d surges, %d crashes, %d drains, %d partitions)",
			c.Faults, c.Kills, c.Corruptions, c.Stalls, c.Surges, c.Crashes, c.Drains, c.Partitions)
	case c.LeaseRounds < 0:
		return fmt.Errorf("chaos: negative lease duration %d", c.LeaseRounds)
	case c.Unjournaled && c.Crashes == 0:
		return fmt.Errorf("chaos: Unjournaled without Crashes disables a journal that nothing would read")
	case c.Kills > 0 && c.Drains > 0:
		return fmt.Errorf("chaos: Kills and Drains can schedule two membership events for the same replica in the same round (a mid-stream kill and a maintenance drain both target the primary) — run them in separate schedules")
	case c.Drains > 1 && c.Replicas == 1:
		return fmt.Errorf("chaos: %d drain cycles over a single replica can schedule its rejoin and its next drain as two membership events for the same replica in the same round — use more replicas or one cycle", c.Drains)
	case c.Partitions > 0 && (c.Kills > 0 || c.Drains > 0):
		return fmt.Errorf("chaos: Partitions cannot combine with Kills or Drains: a kill or drain landing inside a cut window is a second membership event for the same replica in the same round as its lease handoff — partitions combine only with Crashes and Surges")
	case c.Partitions > 0 && (c.Faults > 0 || c.Corruptions > 0 || c.Stalls > 0):
		return fmt.Errorf("chaos: a chip fault, corruption burst, or stall behind a partition is invisible to the quarantine machinery (the dark primary serves unchecked) — schedule faults and partitions separately")
	case c.Partitions > 0 && c.Replicas < 3:
		return fmt.Errorf("chaos: partitions need ≥ 3 replicas for a quorum majority, got %d", c.Replicas)
	case c.Unfenced && c.Partitions == 0:
		return fmt.Errorf("chaos: Unfenced is the split-brain control — it needs Partitions > 0")
	case c.AsymPartitions && c.Partitions == 0:
		return fmt.Errorf("chaos: AsymPartitions shapes partition windows — it needs Partitions > 0")
	case c.Byzantine < 0:
		return fmt.Errorf("chaos: negative byzantine window count %d", c.Byzantine)
	case c.Byzantine > 0 && c.Replicas < 3:
		return fmt.Errorf("chaos: byzantine windows need ≥ 3 replicas for a witness majority, got %d", c.Replicas)
	case c.Byzantine > 0 && (c.Faults > 0 || c.Kills > 0 || c.Corruptions > 0 || c.Stalls > 0 || c.Surges > 0 || c.Drains > 0 || c.Partitions > 0):
		return fmt.Errorf("chaos: byzantine windows combine only with Crashes — witness cross-examination compares routings between healthy replicas, and any concurrent fault plane either makes an honest replica's legitimate divergence look like a lie or hides a liar behind a degraded contract")
	case c.UnverifiedProvenance && c.Byzantine == 0:
		return fmt.Errorf("chaos: UnverifiedProvenance is the blind-ledger control — it needs Byzantine > 0")
	case c.MaxSurgeFactor != 0 && (c.MaxSurgeFactor <= 1 || c.MaxSurgeFactor != c.MaxSurgeFactor):
		return fmt.Errorf("chaos: MaxSurgeFactor %v must be > 1", c.MaxSurgeFactor)
	case c.MaxBER < 0 || c.MaxBER > 1 || c.MaxBER != c.MaxBER:
		return fmt.Errorf("chaos: MaxBER %v outside [0,1]", c.MaxBER)
	case c.Deadline < 0:
		return fmt.Errorf("chaos: negative deadline %d", c.Deadline)
	case c.CheckSLO && c.Deadline == 0:
		return fmt.Errorf("chaos: CheckSLO requires a positive Deadline — a zero deadline would book every delivery missed")
	}
	return nil
}

// maxBER resolves the configured corruption-burst BER ceiling.
func (c Config) maxBER() float64 {
	if c.MaxBER == 0 {
		return 1e-2
	}
	return c.MaxBER
}

// maxSurgeFactor resolves the configured surge-multiplier ceiling.
func (c Config) maxSurgeFactor() float64 {
	if c.MaxSurgeFactor == 0 {
		return 4
	}
	return c.MaxSurgeFactor
}

// leaseRounds resolves the lease duration partition schedules build
// their windows around.
func (c Config) leaseRounds() int {
	if c.LeaseRounds > 0 {
		return c.LeaseRounds
	}
	if c.Pool.Lease.Rounds > 0 {
		return c.Pool.Lease.Rounds
	}
	return 8
}

// GenerateSchedule derives the deterministic chaos schedule for a pool
// of cfg.Replicas copies of sw: cfg.Kills mid-stream primary kills
// (each later revived), cfg.Faults chip faults on random live spares or
// primaries, cfg.Stalls bounded gray-failure stall bursts on the active
// replica, and optional scan-latency jitter. Destructive events are
// spaced so the pool's quarantine–probe–repair loop finishes between
// failures, and a killed replica is never faulted while powered off.
func GenerateSchedule(seed int64, sw core.FaultInjectable, cfg Config) ([]Event, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	stages := sw.StageChips()
	if len(stages) == 0 {
		return nil, fmt.Errorf("chaos: %s has no chip stages to fault", sw.Name())
	}
	rng := rand.New(rand.NewSource(seed))
	poolCfg, err := normalizePool(cfg.Pool)
	if err != nil {
		return nil, err
	}
	// gap is the spacing that lets one failure be detected, probed and
	// repaired (or revived) before the next lands.
	gap := 2*(poolCfg.ProbeAfter+poolCfg.ScanLatency) + 6
	reviveAfter := poolCfg.ProbeAfter + poolCfg.ScanLatency + 2

	var events []Event
	destructive := cfg.Faults + cfg.Kills + cfg.Corruptions
	if destructive == 0 && cfg.Stalls == 0 && cfg.Surges == 0 && cfg.Crashes == 0 && cfg.Drains == 0 && cfg.Partitions == 0 && cfg.Byzantine == 0 {
		return events, nil
	}
	stride := max((cfg.Rounds-2)/max(destructive, 1), gap)
	// Corruption bursts are bounded so the detect–failover–probe loop
	// finishes inside the clean part of the stride: the fault's Until
	// window ends the burst on its own, no cleanup event needed.
	burstLen := max(2, gap/3)
	killEvery := 0
	if cfg.Kills > 0 {
		killEvery = max(destructive/cfg.Kills, 1)
	}
	killedAt := -1 // round of the unrevived kill, if any
	kills, faults, corruptions := 0, 0, 0
	faultsOn := make([]int, cfg.Replicas)
	round := 1 + rng.Intn(max(stride/2, 1))
	for i := 0; i < destructive && round < cfg.Rounds; i++ {
		isKill := killEvery > 0 && kills < cfg.Kills && (i%killEvery == killEvery-1 || destructive-i <= cfg.Kills-kills)
		// Interleave chip faults and corruption bursts proportionally.
		wantCorruption := cfg.Corruptions > 0 &&
			(faults >= cfg.Faults || corruptions*max(cfg.Faults, 1) < faults*cfg.Corruptions)
		if isKill && killedAt < 0 {
			// Kill whoever is primary at that round — the mid-stream
			// kill the acceptance criterion asks for — and swap its
			// board back in a few rounds later (the runner resolves the
			// revive to the killed board).
			events = append(events, Event{Round: round, Kind: EventKill, Replica: ActiveReplica})
			if r := round + reviveAfter; r < cfg.Rounds {
				events = append(events, Event{Round: r, Kind: EventRevive, Replica: ActiveReplica})
			}
			killedAt = round
			kills++
		} else if wantCorruption && corruptions < cfg.Corruptions {
			// Corrupt the board-output wires of whichever replica is
			// primary when the burst starts — the mid-stream data-plane
			// failure the acceptance criterion asks for. The window is
			// bounded; the arbiter must strip the corrupted deliveries
			// and fail over in-round, and the probe must re-admit the
			// replica at full contract once the noise clears.
			ber := cfg.maxBER() * (0.25 + 0.75*rng.Float64())
			events = append(events, Event{
				Round: round, Kind: EventCorruption, Replica: ActiveReplica,
				Wire: link.WireFault{
					Stage: len(stages), Wire: link.AllWires,
					Mode: link.WireBitFlip, BER: ber,
					From: round, Until: min(round+burstLen, cfg.Rounds),
				},
			})
			corruptions++
		} else if faults < cfg.Faults {
			// Spread faults across the replicas (fewest-faulted first,
			// random among ties) so degradation accumulates evenly and
			// no single replica is degraded out of service while its
			// peers stay untouched.
			target, best := 0, faultsOn[0]*1000+rng.Intn(1000)
			for r := 1; r < cfg.Replicas; r++ {
				if score := faultsOn[r]*1000 + rng.Intn(1000); score < best {
					target, best = r, score
				}
			}
			faultsOn[target]++
			events = append(events, Event{Round: round, Kind: EventFault, Replica: target, Fault: randomFault(rng, stages)})
			faults++
		}
		if killedAt >= 0 && round-killedAt > reviveAfter {
			killedAt = -1
		}
		round += stride + rng.Intn(max(stride/2, 1))
	}
	if cfg.Stalls > 0 {
		// Stall bursts are gray — the board keeps routing perfectly, so
		// no quarantine–repair loop has to finish between them — but
		// hedges are budgeted against rounds served, so the first burst
		// waits until the pool has banked ≥ gap rounds of history and
		// every burst stays bounded (≤ burstLen rounds, self-ending).
		delay := 6
		if cfg.Deadline > 0 {
			delay = cfg.Deadline + 5 // an unhedged stalled round must overshoot the SLO
		}
		stallStride := max((cfg.Rounds-gap)/cfg.Stalls, gap)
		sround := gap + rng.Intn(max(stallStride/2, 1))
		for i := 0; i < cfg.Stalls && sround < cfg.Rounds-1; i++ {
			f := timing.Fault{
				Stage: 0, Wire: link.AllWires,
				From: sround, Until: min(sround+burstLen, cfg.Rounds),
			}
			switch i % 3 {
			case 0: // marginal board: every round in the window is slow
				f.Mode, f.Delay = timing.Constant, delay
			case 1: // renegotiating link: most rounds mildly late, some awful
				f.Mode, f.Prob, f.MaxDelay = timing.Jitter, 0.8, delay
			case 2: // thermal throttle: degrades toward the full stall
				f.Mode, f.Delay = timing.Ramp, delay
			}
			events = append(events, Event{Round: sround, Kind: EventTiming, Replica: ActiveReplica, Stall: f})
			sround += stallStride + rng.Intn(max(stallStride/2, 1))
		}
	}
	if cfg.Surges > 0 {
		// Surge bursts are load-plane events: the fabric never degrades,
		// so they need no repair-loop spacing — only bounded windows so
		// the backlog they build can drain before the next one. Shapes
		// rotate step / ramp / flash-crowd; the factor ceiling is the
		// configured oversubscription.
		ceiling := cfg.maxSurgeFactor()
		surgeLen := max(4, gap/2)
		surgeStride := max((cfg.Rounds-2)/cfg.Surges, surgeLen+2)
		ground := 1 + rng.Intn(max(surgeStride/2, 1))
		for i := 0; i < cfg.Surges && ground < cfg.Rounds-1; i++ {
			f := overload.Fault{
				Factor: max(2, ceiling*(0.5+0.5*rng.Float64())),
				From:   ground, Until: min(ground+surgeLen, cfg.Rounds),
			}
			switch i % 3 {
			case 0: // flipped feature flag: instant sustained step
				f.Mode = overload.Step
			case 1: // organic pile-on: builds toward the full factor
				f.Mode = overload.Ramp
			case 2: // flash crowd: random spikes inside the window
				f.Mode, f.Prob = overload.Flash, 0.5
			}
			events = append(events, Event{Round: ground, Kind: EventSurge, Surge: f})
			ground += surgeStride + rng.Intn(max(surgeStride/2, 1))
		}
	}
	if cfg.Drains > 0 {
		// Rolling maintenance: checkpoint/drain replica i, rejoin it from
		// the checkpoint once the probe machinery could have re-admitted a
		// revived board — the same spacing kills use. One cycle per slot of
		// the usable span, jittered within its slot, so exactly cfg.Drains
		// cycles always fit; targets rotate so a long schedule rolls the
		// whole fleet. The runner skips a drain whose target happens to be
		// powered off when the event fires (a kill got there first), and
		// the matching rejoin with it.
		// The −2 leaves room for the rejoin probe to fire inside the run.
		start := gap/2 + 1
		if span := cfg.Rounds - reviveAfter - 2 - start; span >= cfg.Drains {
			for i := 0; i < cfg.Drains; i++ {
				dround := seedrand.SlotRound(rng, start, span, i, cfg.Drains)
				target := i % cfg.Replicas
				events = append(events,
					Event{Round: dround, Kind: EventDrain, Replica: target},
					Event{Round: dround + reviveAfter, Kind: EventRejoin, Replica: target},
				)
			}
		}
	}
	if cfg.Partitions > 0 {
		// Partition windows rotate through the four split-brain shapes,
		// one per slot of the usable span so every window heals strictly
		// inside the run with clean rounds after it for the buffered-ack
		// flush. The window lengths are keyed to the lease: a cut that
		// outlives the lease forces a handoff and fences the dark
		// primary's late acks; a cut inside the lease is covered by the
		// holder's belief and must cost nothing; arbiter isolation stays
		// under the lease so the incumbent coasts while the minority-side
		// arbiter freezes.
		L := cfg.leaseRounds()
		need := L + 5 // longest window (L+3) + heal + one clean round
		start := gap + 2
		span := cfg.Rounds - start - 1
		slots := 0
		if span >= need {
			slots = min(cfg.Partitions, span/need)
		}
		for i := 0; i < slots; i++ {
			f := partition.Fault{Replica: ActiveReplica}
			var winLen int
			switch i % 4 {
			case 0: // cut outlives the lease: handoff + fenced late acks
				f.Mode = partition.SymmetricCut
				winLen = L + 3
			case 1: // cut inside the lease: the holder's belief covers it
				f.Mode = partition.SymmetricCut
				winLen = max(2, L/2)
			case 2:
				if cfg.AsymPartitions {
					// Grants vanish, acks keep flowing: self-fence + handoff.
					f.Mode, f.Dir = partition.OneWay, partition.ToReplica
					winLen = L + 3
				} else {
					// Flapping edge shorter than the lease: renewals squeak
					// through often enough that nothing fences.
					f.Mode, f.Prob = partition.Flapping, 0.4+0.4*rng.Float64()
					winLen = max(3, L/2)
				}
			case 3: // arbiter loses quorum; the incumbent coasts on belief
				f.Mode, f.Replica = partition.ArbiterIsolation, partition.AllReplicas
				winLen = max(1, L-2)
			}
			lo, _ := seedrand.Slot(start, span, i, slots)
			slotw := span / slots
			pround := lo + rng.Intn(max(slotw-winLen-1, 1))
			f.From, f.Until = pround, pround+winLen
			events = append(events,
				Event{Round: pround, Kind: EventPartition, Replica: f.Replica, Cut: f},
				Event{Round: pround + winLen, Kind: EventHeal, Replica: f.Replica},
			)
		}
	}
	if cfg.Byzantine > 0 {
		// Byzantine windows rotate through the four lie modes, one window
		// per slot of the usable span so every window closes strictly
		// inside the run. Lies need no repair-loop spacing — the silicon
		// never degrades — but each window targets whichever replica is
		// serving when it opens (the runner resolves ActiveReplica), so
		// the lies are live, and a conviction mid-window simply moves the
		// lease and leaves the convict lying to nobody.
		winLen := max(3, gap/2)
		start := 2
		if span := cfg.Rounds - start - winLen; span >= cfg.Byzantine {
			for i := 0; i < cfg.Byzantine; i++ {
				bround := seedrand.SlotRound(rng, start, span, i, cfg.Byzantine)
				f := byzantine.Fault{
					Mode:    byzantine.Mode(i % 4),
					Replica: ActiveReplica, // rewritten when the event fires
					Count:   1 + rng.Intn(3),
					From:    bround,
					Until:   min(bround+winLen, cfg.Rounds),
				}
				events = append(events, Event{Round: bround, Kind: EventByzantine, Replica: ActiveReplica, Behavior: f})
			}
		}
	}
	if cfg.Crashes > 0 && cfg.Rounds > 2 {
		// Control-plane crashes need no repair-loop spacing — the restored
		// controller serves the very next round — only enough room for the
		// journal to hold at least one whole checkpoint before the first
		// kill (round ≥ 2). One crash per slot of the remaining span, so
		// exactly cfg.Crashes always fire. Even crashes die between
		// appends; odd ones tear the in-flight checkpoint at a seeded
		// fraction.
		span := cfg.Rounds - 2
		for i := 0; i < cfg.Crashes; i++ {
			ev := Event{Round: seedrand.SlotRound(rng, 2, span, i, cfg.Crashes), Kind: EventCrash}
			if i%2 == 1 {
				ev.TornFrac = 0.05 + 0.9*rng.Float64()
			}
			events = append(events, ev)
		}
	}
	if cfg.ScanLatencyJitter && cfg.Rounds > 3*gap {
		events = append(events,
			Event{Round: gap, Kind: EventScanLatency, Latency: 1},
			Event{Round: cfg.Rounds - gap, Kind: EventScanLatency, Latency: 0},
		)
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].Round < events[j].Round })
	return events, nil
}

// ledgerTotal is the booked-or-buffered frame total of a checkpoint —
// Delivered plus Fenced plus acks still in flight behind a cut: the
// quantity a crash can lose and the loss accounting must diff.
func ledgerTotal(cp *pool.Checkpoint) int {
	t := cp.Ledger.Delivered + cp.Ledger.Fenced
	for _, a := range cp.InFlight {
		t += a.Frames
	}
	return t
}

// randomFault draws one valid chip fault for the given stages.
func randomFault(rng *rand.Rand, stages []core.StageInfo) core.ChipFault {
	si := rng.Intn(len(stages))
	st := stages[si]
	mode := core.ChipFaultMode(rng.Intn(4))
	if mode == core.ChipSwappedPair && st.Ports < 2 {
		mode = core.ChipDead
	}
	a := rng.Intn(st.Ports)
	b := a
	if st.Ports > 1 {
		for b == a {
			b = rng.Intn(st.Ports)
		}
	}
	return core.ChipFault{Stage: si, Chip: rng.Intn(st.Chips), Mode: mode, A: a, B: b}
}

// normalizePool mirrors the pool's defaulting (chaos needs the
// effective ProbeAfter/ScanLatency to space its events), with the
// chaos-specific TripThreshold default of 1.
func normalizePool(c pool.Config) (pool.Config, error) {
	if c.TripThreshold == 0 {
		c.TripThreshold = 1
	}
	if c.ProbeAfter == 0 {
		c.ProbeAfter = 2
	}
	if c.TripThreshold < 0 || c.ProbeAfter < 0 || c.ScanLatency < 0 {
		return c, fmt.Errorf("chaos: negative pool config field: %+v", c)
	}
	return c, nil
}

// RoundRecord is one replayed round's observability.
type RoundRecord struct {
	Round                              int
	Offered, Admitted, Shed, Delivered int
	// Corrupted counts deliveries corrupted in flight this round (all
	// stripped by the pool before delivery accounting).
	Corrupted int
	// Latency is the winning replica's serving latency in rounds;
	// Hedged marks rounds the arbiter replayed on a spare.
	Latency int
	Hedged  bool
	// DeadlineMissed counts this round's deliveries that landed past
	// the Deadline budget (they still count Delivered — the fabric met
	// its ⌊α′m′⌋ contract; the SLO ledger is separate).
	DeadlineMissed       int
	Threshold            int // serving contract's ⌊α′m′⌋
	ServedBy             int // replica index, −1 when none
	FailedOver, Violated bool
	// Fenced counts frames whose acks arrived this round under a lapsed
	// fencing token (rejected at the ledger); StaleDelivered counts
	// frames the unfenced control let through under a stale token — the
	// split-brain double deliveries fencing exists to prevent.
	Fenced, StaleDelivered int
	// ShadowDelivered counts frames physically served this round by
	// superseded primaries that still believe their lease; Frozen marks
	// rounds the arbiter lacked a quorum of heard replicas.
	ShadowDelivered int
	Frozen          bool
	// Booked is the ledger's Delivered increment this round — equal to
	// Delivered under provenance verification, inflated by whatever the
	// unverified control swallowed. Forged and Duplicated are the
	// receiving edge's rejections; Misrouted, Replayed and Fabricated
	// count the lies the behavior plane actually injected into the
	// round's claim stream; Equivocated marks rounds the arbiter caught
	// a forked health report. All zero unless Config.Byzantine > 0.
	Booked, Forged, Duplicated      int
	Misrouted, Replayed, Fabricated int
	Equivocated                     bool
	Events                          []Event // events fired before this round
}

// CrashRecord is the durability ledger of a chaos run: what the crash
// and drain events did, what the checkpoint journal cost, and how much
// state the restarts lost. Its conservation law is
//
//	Stats.Delivered + DeliveredLost == TrueDelivered
//
// — the harness survives every simulated process kill, so its
// round-by-round TrueDelivered count is ground truth, and whatever the
// restored ledgers cannot account for must show up in DeliveredLost
// (zero for clean-tail journaled crashes, one stale round per torn
// tail, everything since the last crash when unjournaled).
type CrashRecord struct {
	// Crashes counts controller kills fired; DrainCycles counts
	// completed drain→rejoin maintenance pairs.
	Crashes, DrainCycles int
	// SnapshotsWritten counts per-round checkpoint appends across all
	// incarnations; SnapshotsRestored counts recoveries that found one.
	SnapshotsWritten, SnapshotsRestored int
	// TornTails counts recoveries that discarded a torn journal tail;
	// TornBytesDiscarded sums the bytes thrown away.
	TornTails, TornBytesDiscarded int
	// StaleRounds sums the rounds of ledger each torn recovery lost
	// (the checkpoint it fell back to predates the crash).
	StaleRounds int
	// DeliveredLost and BacklogLost are the deliveries and waiting
	// clients the restarts could not account for.
	DeliveredLost, BacklogLost int
	// JournalBytes is the checkpoint journal's final size.
	JournalBytes int
	// TrueDelivered is the harness-side delivery count summed over every
	// round of every incarnation.
	TrueDelivered int
}

// PartitionRecord is the split-brain ledger of a chaos run: what the
// partition windows did to lease custody and how every physically
// served frame was eventually booked. Its conservation law is
//
//	Stats.Delivered + Stats.Fenced + Stats.InFlightAcks
//	    + Crash.DeliveredLost == TrueServed
//
// — the harness counts frames on the far side of every cut (primary
// plus shadow deliveries, round by round, across incarnations), so a
// frame the ledgers cannot account for as Delivered, Fenced, buffered
// in flight, or crash-lost is a split-brain leak.
type PartitionRecord struct {
	// Partitions and Heals count the cut and heal events fired.
	Partitions, Heals int
	// LeaseHandoffs counts fenced primary changes (token bumps after
	// the initial grant); FrozenRounds counts rounds the arbiter
	// lacked a quorum and refused to act.
	LeaseHandoffs, FrozenRounds int
	// DualPrimaryRounds counts rounds where a superseded holder served
	// alongside the rightful primary (always 0 with fencing on — the
	// shadows serve, but their frames never book Delivered).
	DualPrimaryRounds int
	// Fenced and StaleDelivered sum the per-round ledger verdicts on
	// late acks: rejected under a lapsed token, or (unfenced control
	// only) double-delivered.
	Fenced, StaleDelivered int
	// TrueServed is the harness-side count of physically served frames
	// — primary and shadow — summed over every round of every
	// incarnation.
	TrueServed int
	// LeaseRounds is the effective lease duration the run used (after
	// defaulting), for display and replay.
	LeaseRounds int
}

// ByzantineRecord is the misbehavior ledger of a chaos run: the lies
// the behavior plane injected, how the receiving edge booked them, and
// what the detectors convicted. Its conservation law is
//
//	Booked + Forged + Duplicated == TrueDelivered + Replayed + Fabricated
//
// — every claim the liars emitted is accounted for, verified or not
// (the blind control books everything into the first term). The
// stronger zero-forged-deliveries acceptance holds only under
// verification: Booked == TrueDelivered, i.e. no fabricated or
// replayed frame ever reached Delivered.
type ByzantineRecord struct {
	// Windows counts behavior-fault windows fired.
	Windows int
	// Misrouted, Replayed and Fabricated count the lies actually
	// injected into claim streams, summed per round — the harness-side
	// ground truth.
	Misrouted, Replayed, Fabricated int
	// Forged and Duplicated sum the receiving edge's rejections (always
	// 0 in the unverified control — the blind ledger rejects nothing).
	Forged, Duplicated int
	// Booked sums the ledger's per-round Delivered increments across
	// incarnations; TrueDelivered sums the physically delivered frames.
	// Booked > TrueDelivered is the double counting the control
	// demonstrates.
	Booked, TrueDelivered int
	// Audits, AuditDisagreements, WitnessConvictions and Equivocations
	// mirror the pool's final detector counters.
	Audits, AuditDisagreements, WitnessConvictions, Equivocations int
	// Verified records whether the receiving edge verified provenance.
	Verified bool
}

// Report is the outcome of one chaos replay.
type Report struct {
	Schedule []Event
	Rounds   []RoundRecord
	// Regressions lists rounds whose delivery fell below the degraded
	// contract of the live replica set — the guarantee the harness
	// enforces. Empty means the pool survived the schedule.
	Regressions []string
	// MaxSameRoundFailovers is the most in-round retargets any single
	// round needed (failover depth, not latency — latency is always
	// within the round or it is a regression).
	MaxSameRoundFailovers int
	// Crash is the durability ledger (crash/drain schedules only).
	Crash CrashRecord
	// Partition is the split-brain ledger (partition schedules only).
	Partition PartitionRecord
	// Byzantine is the misbehavior ledger (byzantine schedules only).
	Byzantine ByzantineRecord
	Stats     pool.Stats
}

// Run replays the schedule against a fresh pool of cfg.Replicas
// switches built by build, with seeded Bernoulli traffic, and verifies
// every round against the live replica set's degraded contract.
func Run(build func() (core.FaultInjectable, error), events []Event, cfg Config) (*Report, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	poolCfg := cfg.Pool
	if poolCfg.TripThreshold == 0 {
		poolCfg.TripThreshold = 1
	}
	if cfg.Deadline > 0 && poolCfg.Deadline == 0 {
		poolCfg.Deadline = cfg.Deadline
	}
	// Stall schedules need hedged dispatch to hold the deadline SLO — a
	// gray replica never trips any functional check, so the spare replay
	// is the only thing standing between a stall burst and a missed
	// deadline. Half the rounds is budget enough: bursts are ≤ gap/3
	// rounds long and ≥ gap rounds apart.
	if cfg.Stalls > 0 && cfg.Replicas >= 2 && poolCfg.HedgeQuantile == 0 {
		poolCfg.HedgeQuantile = 0.9
		poolCfg.HedgeBudget = 0.5
	}
	// Partition schedules run against the lease-fenced pool: custody of
	// the primary role is a lease under a monotonic fencing token, and
	// the schedule's Unfenced control disables only the ledger's token
	// check (plus the arbiter's patience), not the lease itself.
	if cfg.Partitions > 0 {
		if poolCfg.Lease.Rounds == 0 {
			poolCfg.Lease.Rounds = cfg.leaseRounds()
			poolCfg.Lease.Seed = cfg.Seed
		}
		if cfg.Unfenced {
			poolCfg.Lease.Unfenced = true
		}
	}
	// Byzantine schedules arm the edges: the sending edge stamps frame
	// provenance, the receiving edge verifies it (unless the control
	// blinds it — the stamping still happens, the checking doesn't),
	// witness audits fire on a fixed cadence, and the lease machinery is
	// enabled so a caught equivocator loses custody behind a bumped
	// fencing token rather than merely tripping a breaker.
	byzOn := cfg.Byzantine > 0
	if byzOn {
		if poolCfg.Byzantine.Seed == 0 {
			poolCfg.Byzantine.Seed = cfg.Seed
		}
		poolCfg.Byzantine.Verify = !cfg.UnverifiedProvenance
		if poolCfg.Byzantine.AuditEvery == 0 {
			poolCfg.Byzantine.AuditEvery = 2
		}
		if poolCfg.Lease.Rounds == 0 {
			poolCfg.Lease.Rounds = cfg.leaseRounds()
			poolCfg.Lease.Seed = cfg.Seed
		}
	}
	leaseOn := poolCfg.Lease.Rounds > 0
	switches := make([]core.FaultInjectable, cfg.Replicas)
	for i := range switches {
		sw, err := build()
		if err != nil {
			return nil, fmt.Errorf("chaos: building replica %d: %w", i, err)
		}
		switches[i] = sw
	}
	p, err := pool.New(poolCfg, switches...)
	if err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	rep := &Report{Schedule: events}
	if leaseOn {
		rep.Partition.LeaseRounds = poolCfg.Lease.Rounds
	}
	surgePlane := overload.NewPlane(cfg.Seed)
	n := p.Inputs()
	next := 0
	lastFailovers := 0
	lastCorrupted := 0
	lastMissed := 0
	lastFenced, lastStale := 0, 0
	lastHandoffs, lastDual := 0, 0
	lastBooked, lastForged, lastDuplicated := 0, 0, 0
	var killedQueue []int // killed, not-yet-revived replicas, oldest first

	// Crash durability: the journal is the only structure that survives
	// a controller kill (the harness itself stands in for the disk), and
	// the drained map holds maintenance checkpoints on the operator's
	// side of the process boundary.
	var (
		store     *journal.MemStore
		w         *journal.Writer
		lastFrame int // framed size of the newest checkpoint append
		drained   = map[int]pool.ReplicaCheckpoint{}
	)
	if cfg.Crashes > 0 && !cfg.Unjournaled {
		store = journal.NewMemStore()
		w = journal.NewWriter(store)
	}
	// Client-backlog feedback, crash schedules only: shed clients wait
	// out their retry-after before giving up and report the queue depth
	// through NoteBacklog — controller state with real loss semantics
	// when the process dies. Non-crash schedules keep the historical
	// open-loop client model.
	clientFeedback := cfg.Crashes > 0
	waiting := 0
	expiring := map[int]int{}
	for round := 0; round < cfg.Rounds; round++ {
		var fired []Event
		for next < len(events) && events[next].Round <= round {
			ev := events[next]
			next++
			target := ev.Replica
			if target == ActiveReplica {
				if ev.Kind == EventRevive {
					// A revive resolves to the oldest board still
					// powered off, not to today's primary.
					if len(killedQueue) == 0 {
						continue
					}
					target = killedQueue[0]
				} else {
					target = p.Active()
				}
			}
			switch ev.Kind {
			case EventFault:
				err = p.InjectFault(target, ev.Fault)
			case EventKill:
				if err = p.Kill(target); err == nil {
					killedQueue = append(killedQueue, target)
				}
			case EventRevive:
				// A torn crash-restore can roll the kill itself back (the
				// surviving checkpoint predates it), leaving the board
				// already serving; the revive is then a no-op, but it still
				// consumes the queue entry.
				if err = p.Revive(target); err != nil {
					err = nil
				}
				for i, k := range killedQueue {
					if k == target {
						killedQueue = append(killedQueue[:i], killedQueue[i+1:]...)
						break
					}
				}
			case EventScanLatency:
				err = p.SetScanLatency(ev.Latency)
			case EventCorruption:
				err = p.InjectWireFault(target, ev.Wire)
			case EventTiming:
				err = p.InjectTimingFault(target, ev.Stall)
			case EventSurge:
				err = surgePlane.Add(ev.Surge)
			case EventPartition:
				// Non-isolation cuts resolve to whoever holds the lease
				// when the window opens — the mid-stream primary partition
				// the acceptance criterion asks for.
				cut := ev.Cut
				if cut.Mode != partition.ArbiterIsolation {
					cut.Replica = target
				}
				if err = p.InjectPartition(cut); err == nil {
					ev.Cut = cut
					rep.Partition.Partitions++
				}
			case EventHeal:
				if err = p.ClearPartitions(); err == nil {
					rep.Partition.Heals++
				}
			case EventByzantine:
				// The window targets whoever is serving when it opens —
				// the mid-stream primary liar the acceptance criterion
				// asks for.
				b := ev.Behavior
				b.Replica = target
				if err = p.InjectBehavior(b); err == nil {
					ev.Behavior = b
					rep.Byzantine.Windows++
				}
			case EventDrain:
				// Maintenance does not drain a corpse: when a kill beat the
				// drain to the board (or it is already drained), skip the
				// cycle — the matching rejoin finds no checkpoint and skips
				// itself.
				if _, already := drained[target]; already {
					continue
				}
				var rcp pool.ReplicaCheckpoint
				if rcp, err = p.CheckpointReplica(target); err != nil {
					break
				}
				if derr := p.Drain(target); derr != nil {
					continue
				}
				drained[target] = rcp
			case EventRejoin:
				rcp, ok := drained[target]
				if !ok {
					continue
				}
				delete(drained, target)
				if err = p.Rejoin(target, rcp); err == nil {
					rep.Crash.DrainCycles++
				}
			case EventCrash:
				// The simulated process kill: everything but the journal
				// (and the silicon) dies with the controller. The harness
				// peeks at the dying state first — that is loss accounting
				// on the far side of the crash, not recovery.
				dying := p.Snapshot()
				rep.Crash.Crashes++
				if w != nil && ev.TornFrac > 0 && lastFrame > 0 {
					// The checkpoint append in flight at death reached the
					// store only partially: cut the tail of its frame.
					store.Truncate(store.Size() - (lastFrame - int(ev.TornFrac*float64(lastFrame))))
				}
				var np *pool.Pool
				if np, err = pool.New(poolCfg, switches...); err != nil {
					break
				}
				if store != nil {
					res := journal.Replay(store.Bytes())
					if res.TornBytes > 0 {
						rep.Crash.TornTails++
						rep.Crash.TornBytesDiscarded += res.TornBytes
					}
					if res.SnapshotIndex >= 0 {
						restored := new(pool.Checkpoint)
						if err = gob.NewDecoder(bytes.NewReader(res.Records[res.SnapshotIndex].Payload)).Decode(restored); err != nil {
							err = fmt.Errorf("decoding checkpoint: %w", err)
							break
						}
						if err = np.Restore(restored); err != nil {
							break
						}
						rep.Crash.SnapshotsRestored++
						// A torn tail falls back to the previous round's
						// checkpoint: that round's ledger is gone for good.
						// The diff covers every booked-or-buffered form a
						// served frame can take — Delivered, Fenced, or an
						// in-flight ack behind a cut — so the partition
						// conservation law telescopes across incarnations.
						rep.Crash.DeliveredLost += ledgerTotal(dying) - ledgerTotal(restored)
						rep.Crash.StaleRounds += int(dying.Round - restored.Round)
						if lost := dying.ClientBacklog - restored.ClientBacklog; lost > 0 {
							rep.Crash.BacklogLost += lost
						}
					} else {
						rep.Crash.DeliveredLost += ledgerTotal(dying)
						rep.Crash.BacklogLost += dying.ClientBacklog
					}
					// Reopening drops the torn tail and resumes the LSN.
					w = journal.NewWriter(store)
				} else {
					// Unjournaled control: the new controller knows nothing.
					rep.Crash.DeliveredLost += ledgerTotal(dying)
					rep.Crash.BacklogLost += dying.ClientBacklog
				}
				p = np
				// The restored (or amnesiac) ledgers are the new baseline
				// for the per-round stat deltas.
				s := p.Stats()
				lastFailovers, lastCorrupted, lastMissed = s.SameRoundFailovers, s.CorruptedDeliveries, s.DeadlineMissed
				lastFenced, lastStale = s.Fenced, s.StaleDelivered
				lastHandoffs, lastDual = s.LeaseHandoffs, s.DualPrimaryRounds
				lastBooked, lastForged, lastDuplicated = s.Delivered, s.Forged, s.Duplicated
			default:
				err = fmt.Errorf("chaos: unknown event kind %v", ev.Kind)
			}
			if err != nil {
				return nil, fmt.Errorf("chaos: applying %s: %w", ev, err)
			}
			ev.Replica = target
			fired = append(fired, ev)
		}

		msgs := switchsim.RandomMessages(rng, n, surgePlane.Load(round, cfg.Load), cfg.PayloadBits)
		rr, err := p.Run(msgs)
		if err != nil {
			return nil, fmt.Errorf("chaos: round %d: %w", round, err)
		}
		if clientFeedback {
			waiting -= expiring[round]
			delete(expiring, round)
			for _, s := range rr.Shed {
				expiring[round+1+max(s.RetryAfter, 1)]++
				waiting++
			}
			p.NoteBacklog(waiting)
		}
		rec := RoundRecord{
			Round: round, Offered: len(msgs), Shed: len(rr.Shed),
			Admitted: len(msgs) - len(rr.Shed), Threshold: rr.Threshold,
			ServedBy: rr.ServedBy, FailedOver: rr.FailedOver,
			Violated: rr.Violated, Events: fired,
			Latency: rr.Latency, Hedged: rr.Hedged,
		}
		stats := p.Stats()
		rec.Corrupted = stats.CorruptedDeliveries - lastCorrupted
		lastCorrupted = stats.CorruptedDeliveries
		rec.DeadlineMissed = stats.DeadlineMissed - lastMissed
		lastMissed = stats.DeadlineMissed
		if leaseOn {
			rec.Fenced = stats.Fenced - lastFenced
			rec.StaleDelivered = stats.StaleDelivered - lastStale
			rec.ShadowDelivered = rr.ShadowDelivered
			rec.Frozen = rr.Frozen
			lastFenced, lastStale = stats.Fenced, stats.StaleDelivered
			rep.Partition.Fenced += rec.Fenced
			rep.Partition.StaleDelivered += rec.StaleDelivered
			rep.Partition.LeaseHandoffs += stats.LeaseHandoffs - lastHandoffs
			rep.Partition.DualPrimaryRounds += stats.DualPrimaryRounds - lastDual
			lastHandoffs, lastDual = stats.LeaseHandoffs, stats.DualPrimaryRounds
			if rec.Frozen {
				rep.Partition.FrozenRounds++
			}
			// A frame Delivered under a stale fencing token is the
			// split-brain leak the lease exists to prevent — a regression
			// anywhere but in the unfenced control.
			if rec.StaleDelivered > 0 && !poolCfg.Lease.Unfenced {
				rep.Regressions = append(rep.Regressions,
					fmt.Sprintf("round %d: %d frames Delivered under a stale fencing token (token %d, split-brain leak)",
						round, rec.StaleDelivered, rr.LeaseToken))
			}
		}
		if byzOn {
			rec.Booked = stats.Delivered - lastBooked
			rec.Forged = stats.Forged - lastForged
			rec.Duplicated = stats.Duplicated - lastDuplicated
			lastBooked, lastForged, lastDuplicated = stats.Delivered, stats.Forged, stats.Duplicated
			rec.Misrouted, rec.Replayed, rec.Fabricated = rr.Misrouted, rr.ReplayedInjected, rr.ForgedInjected
			rec.Equivocated = rr.Equivocated
			rep.Byzantine.Misrouted += rec.Misrouted
			rep.Byzantine.Replayed += rec.Replayed
			rep.Byzantine.Fabricated += rec.Fabricated
			rep.Byzantine.Forged += rec.Forged
			rep.Byzantine.Duplicated += rec.Duplicated
			rep.Byzantine.Booked += rec.Booked
			rep.Byzantine.TrueDelivered += rr.TrueDelivered
			// A ledger increment that disagrees with the physical count
			// under verification means a forged or replayed claim reached
			// Delivered (or a genuine frame was wrongly rejected) — the
			// leak the provenance tags exist to prevent, a regression
			// anywhere but in the unverified control.
			if !cfg.UnverifiedProvenance && rec.Booked != rr.TrueDelivered {
				rep.Regressions = append(rep.Regressions,
					fmt.Sprintf("round %d: ledger booked %d frames against %d physically delivered under provenance verification (replica %d)",
						round, rec.Booked, rr.TrueDelivered, rr.ServedBy))
			}
		}
		if cfg.CheckSLO && rec.DeadlineMissed > 0 {
			rep.Regressions = append(rep.Regressions,
				fmt.Sprintf("round %d: %d deliveries missed the %d-round deadline SLO (latency %d, replica %d, hedged %v)",
					round, rec.DeadlineMissed, cfg.Deadline, rec.Latency, rr.ServedBy, rr.Hedged))
		}
		if rr.Result != nil {
			rec.Delivered = len(rr.Result.Delivered)
			// Data-plane intactness: whatever the schedule did, every
			// payload the pool counts delivered must match the offered
			// bits exactly — a corrupted delivery leaking through is a
			// regression even in a round flagged violated.
			offered := make(map[int][]byte, len(msgs))
			for _, m := range msgs {
				offered[m.Input] = m.Payload
			}
			for _, d := range rr.Result.Delivered {
				if !bytes.Equal(d.Payload, offered[d.Input]) {
					rep.Regressions = append(rep.Regressions,
						fmt.Sprintf("round %d: corrupted payload delivered from input %d (replica %d)",
							round, d.Input, rr.ServedBy))
				}
			}
		}
		rep.Rounds = append(rep.Rounds, rec)

		// The invariant: the round must deliver at least
		// min(admitted, ⌊α′m′⌋) messages for the serving contract of
		// the live replica set. A round with no servable replica has an
		// empty live set and threshold 0, which is only acceptable if
		// the schedule really did take every replica down at once —
		// the generator never does, so it too is a regression.
		want := min(rec.Admitted, rec.Threshold)
		switch {
		case rr.Violated:
			rep.Regressions = append(rep.Regressions,
				fmt.Sprintf("round %d: contract violated after exhausting replicas (delivered %d of %d admitted, threshold %d)",
					round, rec.Delivered, rec.Admitted, rec.Threshold))
		case rr.ServedBy >= 0 && rec.Delivered < want:
			rep.Regressions = append(rep.Regressions,
				fmt.Sprintf("round %d: delivered %d < ⌊α′m′⌋ bound %d (replica %d)",
					round, rec.Delivered, want, rr.ServedBy))
		}
		if depth := stats.SameRoundFailovers - lastFailovers; depth > rep.MaxSameRoundFailovers {
			rep.MaxSameRoundFailovers = depth
		}
		lastFailovers = stats.SameRoundFailovers

		rep.Crash.TrueDelivered += rec.Delivered
		if leaseOn {
			rep.Partition.TrueServed += rec.Delivered + rr.ShadowDelivered
		}
		if w != nil {
			// End-of-round checkpoint append: this record is what the next
			// incarnation restores, and the one a torn crash next round
			// would shear.
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(p.Snapshot()); err != nil {
				return nil, fmt.Errorf("chaos: round %d: encoding checkpoint: %w", round, err)
			}
			w.Append(journal.KindSnapshot, buf.Bytes())
			lastFrame = buf.Len() + journal.FrameOverhead
			rep.Crash.SnapshotsWritten++
		}
	}
	rep.Stats = p.Stats()
	if byzOn {
		rep.Byzantine.Verified = !cfg.UnverifiedProvenance
		rep.Byzantine.Audits = rep.Stats.Audits
		rep.Byzantine.AuditDisagreements = rep.Stats.AuditDisagreements
		rep.Byzantine.WitnessConvictions = rep.Stats.WitnessConvictions
		rep.Byzantine.Equivocations = rep.Stats.Equivocations
	}
	if store != nil {
		rep.Crash.JournalBytes = store.Size()
	}
	return rep, nil
}
