package chaos

import (
	"strings"
	"testing"

	"concentrators/internal/byzantine"
	"concentrators/internal/pool"
)

// byzantineConfig is the misbehavior-tolerance fixture: four bounded
// lie windows rotating through all four modes (misroute, replay,
// fabricated ack, equivocation) against a 3-replica pool with frame
// provenance, witness audits, and the arbiter cross-check armed.
func byzantineConfig(seed int64) Config {
	return Config{
		Replicas:    3,
		Rounds:      120,
		Load:        0.7,
		PayloadBits: 4,
		Seed:        seed,
		Byzantine:   4,
		Pool:        pool.Config{TripThreshold: 1, ProbeAfter: 1},
	}
}

func TestByzantineScheduleDeterministic(t *testing.T) {
	cfg := byzantineConfig(42)
	a := mustSchedule(t, cfg)
	b := mustSchedule(t, cfg)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	modes := map[byzantine.Mode]int{}
	for _, ev := range a {
		if ev.Kind != EventByzantine {
			t.Fatalf("unexpected %v in a pure byzantine schedule", ev)
		}
		if ev.Replica != ActiveReplica {
			t.Fatalf("window targets %d, want the active replica", ev.Replica)
		}
		f := ev.Behavior
		if f.Until <= f.From || f.From != ev.Round || f.Until > cfg.Rounds {
			t.Fatalf("window [%d,%d) not bounded inside the run at round %d", f.From, f.Until, ev.Round)
		}
		modes[f.Mode]++
	}
	if len(a) != cfg.Byzantine || len(modes) != 4 {
		t.Fatalf("schedule has %d windows over %d modes, want %d over 4", len(a), len(modes), cfg.Byzantine)
	}
}

// TestByzantineChaosAcceptance is the misbehavior-tolerance acceptance
// run: 3 seeds × 120 rounds of bounded lie windows on the serving
// replica, with zero guarantee regressions, zero forged deliveries
// (the ledger's Delivered increments match the physical count round by
// round), every injected replay booked Duplicated, every fabrication
// booked Forged, and the claim conservation law
//
//	Booked + Forged + Duplicated == TrueDelivered + Replayed + Fabricated
//
// holding exactly.
func TestByzantineChaosAcceptance(t *testing.T) {
	for _, seed := range []int64{7, 1987, 0xC0C0} {
		cfg := byzantineConfig(seed)
		events := mustSchedule(t, cfg)
		rep, err := Run(buildColumnsort, events, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(rep.Regressions) != 0 {
			t.Fatalf("seed %d: guarantee regressed under byzantine misbehavior:\n%v\nschedule: %v",
				seed, rep.Regressions, events)
		}
		if rep.Stats.Violations != 0 {
			t.Fatalf("seed %d: %d violated rounds", seed, rep.Stats.Violations)
		}
		bz := rep.Byzantine
		if !bz.Verified || bz.Windows != cfg.Byzantine {
			t.Fatalf("seed %d: %d windows fired (verified %v), want %d verified", seed, bz.Windows, bz.Verified, cfg.Byzantine)
		}
		if bz.Misrouted == 0 || bz.Replayed == 0 || bz.Fabricated == 0 {
			t.Fatalf("seed %d: lie windows injected nothing (%d misrouted, %d replayed, %d fabricated)",
				seed, bz.Misrouted, bz.Replayed, bz.Fabricated)
		}
		if bz.Booked != bz.TrueDelivered {
			t.Fatalf("seed %d: ledger booked %d frames, %d physically delivered — forged deliveries leaked",
				seed, bz.Booked, bz.TrueDelivered)
		}
		if bz.Duplicated != bz.Replayed || bz.Forged != bz.Fabricated {
			t.Fatalf("seed %d: edge rejections (%d duplicated, %d forged) disagree with injections (%d replayed, %d fabricated)",
				seed, bz.Duplicated, bz.Forged, bz.Replayed, bz.Fabricated)
		}
		if bz.Booked+bz.Forged+bz.Duplicated != bz.TrueDelivered+bz.Replayed+bz.Fabricated {
			t.Fatalf("seed %d: claim conservation broken: %d+%d+%d != %d+%d+%d",
				seed, bz.Booked, bz.Forged, bz.Duplicated, bz.TrueDelivered, bz.Replayed, bz.Fabricated)
		}
		if bz.Audits == 0 {
			t.Fatalf("seed %d: no witness audits fired over %d rounds", seed, cfg.Rounds)
		}
		if bz.Equivocations == 0 {
			t.Fatalf("seed %d: the equivocation window was never caught by the arbiter cross-check", seed)
		}
	}
}

// TestByzantineWithCrashes exercises the one allowed combination: lie
// windows interleaved with journaled controller crash-restarts. The
// provenance verifier's dedup window, the stamper's sequence counter,
// and the witness tally all ride the checkpoint journal, so zero
// forged deliveries must hold across incarnations too.
func TestByzantineWithCrashes(t *testing.T) {
	cfg := byzantineConfig(11)
	cfg.Crashes = 2
	events := mustSchedule(t, cfg)
	rep, err := Run(buildColumnsort, events, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Regressions) != 0 {
		t.Fatalf("guarantee regressed:\n%v", rep.Regressions)
	}
	if rep.Crash.Crashes != cfg.Crashes {
		t.Fatalf("%d crashes fired, want %d", rep.Crash.Crashes, cfg.Crashes)
	}
	if bz := rep.Byzantine; bz.Booked != bz.TrueDelivered {
		t.Fatalf("ledger booked %d frames across incarnations, %d physically delivered", bz.Booked, bz.TrueDelivered)
	}
}

// TestUnverifiedProvenanceControl is the blind-ledger control: the
// same lie schedule with the receiving edge's verification disabled
// must double-count — the reported Delivered exceeds the physically
// delivered ground truth by exactly the replayed and fabricated
// claims, and nothing books Forged or Duplicated.
func TestUnverifiedProvenanceControl(t *testing.T) {
	cfg := byzantineConfig(1987)
	cfg.UnverifiedProvenance = true
	events := mustSchedule(t, cfg)
	rep, err := Run(buildColumnsort, events, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bz := rep.Byzantine
	if bz.Verified {
		t.Fatal("control ran verified")
	}
	if bz.Replayed+bz.Fabricated == 0 {
		t.Fatal("control injected no double-countable lies — it demonstrates nothing")
	}
	if bz.Forged != 0 || bz.Duplicated != 0 {
		t.Fatalf("blind ledger rejected claims (%d forged, %d duplicated)", bz.Forged, bz.Duplicated)
	}
	if bz.Booked <= bz.TrueDelivered {
		t.Fatalf("control booked %d frames against %d physically delivered — no double counting demonstrated",
			bz.Booked, bz.TrueDelivered)
	}
	if bz.Booked != bz.TrueDelivered+bz.Replayed+bz.Fabricated {
		t.Fatalf("blind conservation broken: %d != %d+%d+%d",
			bz.Booked, bz.TrueDelivered, bz.Replayed, bz.Fabricated)
	}
}

// TestByzantineDisabledNoOp pins the opt-in: a schedule with no
// byzantine windows books nothing into the misbehavior ledger and
// never touches the Forged/Duplicated terms — prior-plane trajectories
// are untouched (the rest of this package's suite asserts their exact
// behavior).
func TestByzantineDisabledNoOp(t *testing.T) {
	cfg := baseConfig(7)
	events := mustSchedule(t, cfg)
	for _, ev := range events {
		if ev.Kind == EventByzantine {
			t.Fatalf("byzantine window scheduled with Byzantine == 0: %v", ev)
		}
	}
	rep, err := Run(buildColumnsort, events, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Byzantine != (ByzantineRecord{}) {
		t.Fatalf("misbehavior ledger written without byzantine windows: %+v", rep.Byzantine)
	}
	if rep.Stats.Forged != 0 || rep.Stats.Duplicated != 0 {
		t.Fatalf("Forged/Duplicated booked without byzantine windows: %d/%d", rep.Stats.Forged, rep.Stats.Duplicated)
	}
}

func TestByzantineConfigRejected(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"negative", func(c *Config) { c.Byzantine = -1 }, "negative byzantine"},
		{"two replicas", func(c *Config) { c.Replicas = 2 }, "witness majority"},
		{"with kills", func(c *Config) { c.Kills = 1 }, "combine only with Crashes"},
		{"with partitions", func(c *Config) { c.Partitions = 1 }, "combine only with Crashes"},
		{"control without windows", func(c *Config) { c.Byzantine = 0 }, "needs Byzantine > 0"},
	}
	sw, err := buildColumnsort()
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range cases {
		cfg := byzantineConfig(1)
		cfg.UnverifiedProvenance = tc.name == "control without windows"
		tc.mut(&cfg)
		_, err := GenerateSchedule(cfg.Seed, sw, cfg)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want %q", tc.name, err, tc.want)
		}
	}
}
