package concentrators

// One benchmark per table and figure of the paper (see the
// per-experiment index in DESIGN.md). Each benchmark prints its
// regenerated rows/series once — the same content the paper reports —
// and then times the representative hot operation of that experiment.
// Pure performance benchmarks for the substrates follow at the bottom.

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"concentrators/internal/banyan"
	"concentrators/internal/bdd"
	"concentrators/internal/bench"
	"concentrators/internal/bitonic"
	"concentrators/internal/bitvec"
	"concentrators/internal/byzantine"
	"concentrators/internal/concgraph"
	"concentrators/internal/core"
	"concentrators/internal/gatelevel"
	"concentrators/internal/health"
	"concentrators/internal/hyper"
	"concentrators/internal/journal"
	"concentrators/internal/knockout"
	"concentrators/internal/layout"
	"concentrators/internal/link"
	"concentrators/internal/mesh"
	"concentrators/internal/nearsort"
	"concentrators/internal/optroute"
	"concentrators/internal/overload"
	"concentrators/internal/partition"
	"concentrators/internal/pool"
	"concentrators/internal/seqhyper"
	"concentrators/internal/switchsim"
	"concentrators/internal/timing"
	"concentrators/internal/workload"
)

var reportOnce sync.Map // experiment id → *sync.Once

// report regenerates the experiment's table/figure once per process and
// logs it through the benchmark, so `go test -bench` output carries the
// reproduced rows/series.
func report(b *testing.B, id string) {
	b.Helper()
	once, _ := reportOnce.LoadOrStore(id, new(sync.Once))
	once.(*sync.Once).Do(func() {
		e, err := bench.ByID(id)
		if err != nil {
			b.Fatal(err)
		}
		var buf bytes.Buffer
		if err := e.Run(&buf); err != nil {
			b.Fatalf("experiment %s: %v", id, err)
		}
		b.Logf("\n%s", buf.String())
	})
}

func randomPattern(rng *rand.Rand, n int) *bitvec.Vector {
	v := bitvec.New(n)
	for i := 0; i < n; i++ {
		v.Set(i, rng.Intn(2) == 1)
	}
	return v
}

// --- Table 1 -----------------------------------------------------------------

func BenchmarkTable1(b *testing.B) {
	report(b, "T1")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := layout.Table1(4096, 2048); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figures -------------------------------------------------------------------

func BenchmarkFig1NearsortStructure(b *testing.B) {
	report(b, "F1")
	rng := rand.New(rand.NewSource(1))
	v := randomPattern(rng, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eps := v.Nearsortedness()
		if err := nearsort.CheckLemma1(v, eps); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2Converse(b *testing.B) {
	report(b, "F2")
	p := nearsort.Fig2Params{N: 4096, M: 1024, Eps: 16, K: 1200}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := nearsort.Fig2Counterexample(p)
		if err != nil {
			b.Fatal(err)
		}
		if nearsort.IsNearsorted(v, p.Eps) {
			b.Fatal("counterexample broken")
		}
	}
}

func BenchmarkFig3Revsort2D(b *testing.B) {
	report(b, "F3")
	sw, err := core.NewRevsortSwitch(64, 28)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	v := (workload.FixedCount{K: 24}).Pattern(rng, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sw.Route(v); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4Revsort3D(b *testing.B) {
	report(b, "F4")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := layout.RevsortPackage(4096, 2048); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRevsortDirtyRows(b *testing.B) {
	report(b, "F5")
	rng := rand.New(rand.NewSource(3))
	side := 64
	src, err := mesh.FromRowMajor(randomPattern(rng, side*side), side, side)
	if err != nil {
		b.Fatal(err)
	}
	bound := mesh.Algorithm1DirtyBound(side * side)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := src.Clone()
		if err := mesh.Algorithm1(m); err != nil {
			b.Fatal(err)
		}
		if m.DirtyRows() > bound {
			b.Fatal("dirty-row bound violated")
		}
	}
}

func BenchmarkFig6Columnsort2D(b *testing.B) {
	report(b, "F6")
	sw, err := core.NewColumnsortSwitch(8, 4, 18)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	v := (workload.FixedCount{K: 14}).Pattern(rng, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sw.Route(v); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7Columnsort3D(b *testing.B) {
	report(b, "F7")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := layout.ColumnsortPackage(512, 8, 2048); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8Transposer(b *testing.B) {
	report(b, "F8")
	b.ResetTimer()
	total := 0.0
	for i := 0; i < b.N; i++ {
		for w := 2; w <= 64; w <<= 1 {
			total += layout.TransposerVolume(w)
		}
	}
	_ = total
}

// --- Theorems -------------------------------------------------------------------

func BenchmarkTheorem3LoadRatio(b *testing.B) {
	report(b, "T3")
	sw, err := core.NewRevsortSwitch(1024, 512)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	v := randomPattern(rng, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := sw.Route(v)
		if err != nil {
			b.Fatal(err)
		}
		if err := nearsort.CheckPartialConcentration(v, out, 512, sw.EpsilonBound()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTheorem4LoadRatio(b *testing.B) {
	report(b, "T4")
	sw, err := core.NewColumnsortSwitch(128, 8, 512)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	v := randomPattern(rng, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := sw.Route(v)
		if err != nil {
			b.Fatal(err)
		}
		if err := nearsort.CheckPartialConcentration(v, out, 512, sw.EpsilonBound()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Delays -----------------------------------------------------------------------

func BenchmarkGateDelays(b *testing.B) {
	report(b, "D1")
	nl, err := hyper.BuildNetlist(64)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	v := randomPattern(rng, 64)
	payload := make([]bool, 64)
	for i := range payload {
		payload[i] = rng.Intn(2) == 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := nl.Eval(v, payload); err != nil {
			b.Fatal(err)
		}
	}
}

// --- §6 full sorters ------------------------------------------------------------------

func BenchmarkFullRevsortHyper(b *testing.B) {
	report(b, "S6a")
	sw, err := core.NewFullRevsortHyper(1024, 1024)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	v := randomPattern(rng, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sw.Route(v); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFullColumnsortHyper(b *testing.B) {
	report(b, "S6b")
	sw, err := core.NewFullColumnsortHyper(128, 8, 1024)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	v := randomPattern(rng, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sw.Route(v); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations --------------------------------------------------------------------------

func BenchmarkAblationRotation(b *testing.B) {
	report(b, "X1")
	rng := rand.New(rand.NewSource(10))
	side := 64
	src, err := mesh.FromRowMajor(randomPattern(rng, side*side), side, side)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := src.Clone()
		if err := mesh.RevRotate(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationBeta(b *testing.B) {
	report(b, "X2")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := layout.BetaSweep(4096, 2048); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkThroughput(b *testing.B) {
	report(b, "X3")
	sw, err := core.NewColumnsortSwitch(128, 8, 512)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	msgs := switchsim.RandomMessages(rng, 1024, 0.4, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := switchsim.Run(sw, msgs)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Delivered) == 0 {
			b.Fatal("nothing delivered")
		}
	}
	b.ReportMetric(float64(len(msgs))*float64(b.N)/b.Elapsed().Seconds(), "msgs/s")
}

func BenchmarkTwoStageReach(b *testing.B) {
	report(b, "X4")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		layout.TwoStageReach(256, 0.5)
	}
}

func BenchmarkObliviousPrice(b *testing.B) {
	report(b, "X5")
	tp, err := optroute.ColumnsortTopology(8, 4, 18)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(18))
	v := randomPattern(rng, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tp.MaxRoutable(v); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGateLevelComposition(b *testing.B) {
	report(b, "D2")
	sw, err := gatelevel.BuildColumnsort(8, 4, 18)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(19))
	v := randomPattern(rng, 32)
	payload := make([]bool, 32)
	for i := range payload {
		payload[i] = rng.Intn(2) == 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sw.Eval(v, payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSequentialHyper(b *testing.B) {
	report(b, "X6")
	sw, err := seqhyper.New(256)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(20))
	v := randomPattern(rng, 256)
	payloads := map[int][]bool{}
	if _, err := sw.Setup(v); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 256; i++ {
		if v.Get(i) {
			p := make([]bool, 16)
			for j := range p {
				p[j] = rng.Intn(2) == 1
			}
			payloads[i] = p
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sw.Setup(v); err != nil {
			b.Fatal(err)
		}
		if _, _, err := sw.Stream(payloads); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBitonicBaseline(b *testing.B) {
	report(b, "X7")
	sw, err := bitonic.NewSwitch(1024, 512)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	v := randomPattern(rng, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sw.Route(v); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCongestionPolicies(b *testing.B) {
	report(b, "X8")
	sw, err := core.NewPerfectSwitch(64, 16)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := switchsim.RunSession(sw, switchsim.SessionConfig{
			Policy: switchsim.Resend, Load: 0.5, Rounds: 50, PayloadBits: 8, Seed: 23, AckDelay: 2,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGraphConcentrators(b *testing.B) {
	report(b, "X9")
	rng := rand.New(rand.NewSource(24))
	g, err := concgraph.RandomRegular(20, 10, 4, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.ExactCapacity(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTruncatedNearsorter(b *testing.B) {
	report(b, "X10")
	sw, err := bitonic.NewTruncatedSwitch(16, 10, 8)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(25))
	v := randomPattern(rng, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sw.Route(v); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFormalVerification(b *testing.B) {
	report(b, "D3")
	nl, err := hyper.BuildNetlist(16)
	if err != nil {
		b.Fatal(err)
	}
	opt := nl.Net.Optimize()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eq, err := bdd.Equivalent(nl.Net, opt)
		if err != nil || !eq {
			b.Fatal("equivalence proof failed")
		}
	}
}

func BenchmarkPartitioningCost(b *testing.B) {
	report(b, "X11")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sw, err := core.NewRevsortSwitch(4096, 2048)
		if err != nil {
			b.Fatal(err)
		}
		_ = sw.ChipCount()
	}
}

func BenchmarkKnockoutSwitch(b *testing.B) {
	report(b, "X12")
	sw, err := knockout.New(32, 8, knockout.PerfectFactory)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(26))
	dest := make([]int, 32)
	for i := range dest {
		if rng.Intn(10) < 9 {
			dest[i] = rng.Intn(32)
		} else {
			dest[i] = -1
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sw.Slot(dest); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Substrate performance benchmarks (no figure attached) ---------------------------------

func BenchmarkHyperChipSetup(b *testing.B) {
	for _, n := range []int{64, 256, 1024, 4096} {
		b.Run(sizeName(n), func(b *testing.B) {
			c := hyper.MustChip(n)
			rng := rand.New(rand.NewSource(12))
			v := randomPattern(rng, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Setup(v); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkRevsortRoute(b *testing.B) {
	for _, n := range []int{256, 1024, 4096, 16384} {
		b.Run(sizeName(n), func(b *testing.B) {
			sw, err := core.NewRevsortSwitch(n, n/2)
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(13))
			v := randomPattern(rng, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sw.Route(v); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkColumnsortRoute(b *testing.B) {
	for _, n := range []int{256, 1024, 4096, 16384} {
		b.Run(sizeName(n), func(b *testing.B) {
			sw, err := core.NewColumnsortSwitchBeta(n, n/2, 0.75)
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(14))
			v := randomPattern(rng, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sw.Route(v); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkBanyanConcentration(b *testing.B) {
	for _, n := range []int{256, 1024, 4096} {
		b.Run(sizeName(n), func(b *testing.B) {
			nw, err := banyan.New(n, banyan.ButterflyLSB)
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(15))
			v := randomPattern(rng, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rt, err := nw.RouteConcentration(v)
				if err != nil {
					b.Fatal(err)
				}
				if rt.Conflicts != 0 {
					b.Fatal("conflict")
				}
			}
		})
	}
}

func BenchmarkMeshAlgorithm1(b *testing.B) {
	for _, side := range []int{32, 64, 128} {
		b.Run(sizeName(side*side), func(b *testing.B) {
			rng := rand.New(rand.NewSource(16))
			src, err := mesh.FromRowMajor(randomPattern(rng, side*side), side, side)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m := src.Clone()
				if err := mesh.Algorithm1(m); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkBitSerialStreaming(b *testing.B) {
	sw, err := core.NewPerfectSwitch(256, 128)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	msgs := switchsim.RandomMessages(rng, 256, 0.5, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := switchsim.Run(sw, msgs); err != nil {
			b.Fatal(err)
		}
	}
}

func sizeName(n int) string {
	switch {
	case n >= 1<<20:
		return "n=big"
	default:
		return "n=" + itoa(n)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkHealthScan times one full BIST scan — the per-scan cost a
// deployment pays every scan-every rounds — on both multichip designs.
func BenchmarkHealthScan(b *testing.B) {
	for _, tc := range []struct {
		name  string
		build func() (core.FaultInjectable, error)
	}{
		{"revsort-1024", func() (core.FaultInjectable, error) { return core.NewRevsortSwitch(1024, 512) }},
		{"columnsort-1024", func() (core.FaultInjectable, error) { return core.NewColumnsortSwitchBeta(1024, 512, 0.75) }},
	} {
		b.Run(tc.name, func(b *testing.B) {
			sw, err := tc.build()
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := health.Scan(sw); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(tc.name+"-faulty", func(b *testing.B) {
			sw, err := tc.build()
			if err != nil {
				b.Fatal(err)
			}
			plane := core.NewFaultPlane()
			plane.Add(core.ChipFault{Stage: 0, Chip: 1, Mode: core.ChipDead})
			if err := sw.SetFaultPlane(plane); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := health.Scan(sw); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDegradedThroughput compares per-round routing cost of a
// healthy revsort switch against its degraded configuration after a
// final-stage chip bypass — the most expensive repair (full trace plus
// repair-tap re-drive).
func BenchmarkDegradedThroughput(b *testing.B) {
	sw, err := core.NewRevsortSwitch(1024, 512)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(15))
	v := randomPattern(rng, 1024)
	b.Run("healthy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sw.Route(v); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("degraded", func(b *testing.B) {
		plane := core.NewFaultPlane()
		plane.Add(core.ChipFault{Stage: core.RevsortStage3Columns, Chip: 1, Mode: core.ChipDead})
		if err := sw.SetFaultPlane(plane); err != nil {
			b.Fatal(err)
		}
		defer func() {
			if err := sw.SetFaultPlane(nil); err != nil {
				b.Fatal(err)
			}
		}()
		rep, err := health.Scan(sw)
		if err != nil {
			b.Fatal(err)
		}
		d, err := health.NewDegradedSwitch(sw, rep.Faults)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := d.Route(v); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPoolFailover times a pool round whose primary violates its
// contract mid-round: online detection, breaker trip, in-round arbiter
// retarget to the hot spare, and the replayed setup — the pool's
// recovery latency, paid entirely within the round.
func BenchmarkPoolFailover(b *testing.B) {
	build := func() core.FaultInjectable {
		sw, err := core.NewColumnsortSwitchBeta(64, 32, 0.75)
		if err != nil {
			b.Fatal(err)
		}
		return sw
	}
	primary, spare := build(), build()
	msgs := make([]switchsim.Message, 0, 16)
	for i := 0; i < 16; i++ {
		msgs = append(msgs, switchsim.Message{Input: i, Payload: []byte{1, 0, 1, 1}})
	}
	fault := core.ChipFault{Stage: 0, Chip: 1, Mode: core.ChipDead}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := pool.New(pool.Config{TripThreshold: 1, ProbeAfter: 4}, primary, spare)
		if err != nil {
			b.Fatal(err)
		}
		if err := p.InjectFault(0, fault); err != nil {
			b.Fatal(err)
		}
		rr, err := p.Run(msgs)
		if err != nil {
			b.Fatal(err)
		}
		if !rr.FailedOver || rr.Violated {
			b.Fatalf("round did not fail over: %+v", rr)
		}
	}
}

// BenchmarkPartitionFailover times the full lease-fenced failover arc:
// a symmetric cut darkens the primary, the holder's lease lapses, the
// arbiter waits out the lease and re-grants under a bumped fencing
// token, and the dark primary's buffered acks are fenced at the heal.
// The reported time covers the rounds from cut to completed handoff —
// the partition-tolerance counterpart of BenchmarkPoolFailover's
// in-round retarget.
func BenchmarkPartitionFailover(b *testing.B) {
	build := func() core.FaultInjectable {
		sw, err := core.NewColumnsortSwitchBeta(64, 32, 0.75)
		if err != nil {
			b.Fatal(err)
		}
		return sw
	}
	msgs := make([]switchsim.Message, 0, 16)
	for i := 0; i < 16; i++ {
		msgs = append(msgs, switchsim.Message{Input: i, Payload: []byte{1, 0, 1, 1}})
	}
	const lease = 4
	cut := partition.Fault{Mode: partition.SymmetricCut, Replica: 0, From: 1, Until: 1 + lease + 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := pool.New(pool.Config{
			TripThreshold: 1, ProbeAfter: 1,
			Lease: pool.LeaseConfig{Rounds: lease, Seed: 1},
		}, build(), build(), build())
		if err != nil {
			b.Fatal(err)
		}
		if err := p.InjectPartition(cut); err != nil {
			b.Fatal(err)
		}
		for p.Stats().LeaseHandoffs == 0 {
			rr, err := p.Run(msgs)
			if err != nil {
				b.Fatal(err)
			}
			if rr.Violated {
				b.Fatalf("failover round violated the guarantee: %+v", rr)
			}
		}
		if s := p.Stats(); s.StaleDelivered != 0 {
			b.Fatalf("%d frames delivered under a stale token", s.StaleDelivered)
		}
	}
}

// BenchmarkCorruptionQuarantine times the wire-level detection →
// quarantine path that rides next to the chip-level MTTR below: a
// stuck board-output wire corrupts deliveries until the replica's link
// monitor convicts it, the wire joins the fault record as an
// OutputWireFault, and the serving contract is rebuilt one output
// smaller. The reported time covers the corrupt rounds spent reaching
// conviction plus the contract rebuild.
func BenchmarkCorruptionQuarantine(b *testing.B) {
	sw, err := core.NewColumnsortSwitchBeta(64, 32, 0.75)
	if err != nil {
		b.Fatal(err)
	}
	msgs := make([]switchsim.Message, 0, 16)
	for i := 0; i < 16; i++ {
		msgs = append(msgs, switchsim.Message{Input: i, Payload: []byte{1, 0, 1, 1}})
	}
	outStage := len(sw.StageChips())
	fault := link.WireFault{Stage: outStage, Wire: 0, Mode: link.WireStuck, StuckValue: 0}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := pool.New(pool.Config{
			TripThreshold: 8, // conviction, not the breaker, ends the corruption
			Monitor:       link.MonitorConfig{Alpha: 0.9, Threshold: 0.5, MinFrames: 2},
		}, sw)
		if err != nil {
			b.Fatal(err)
		}
		if err := p.InjectWireFault(0, fault); err != nil {
			b.Fatal(err)
		}
		quarantined := false
		for round := 0; round < 8; round++ {
			if _, err := p.Run(msgs); err != nil {
				b.Fatal(err)
			}
			if p.Stats().LinksQuarantined == 1 {
				quarantined = true
				break
			}
		}
		if !quarantined {
			b.Fatal("wire never quarantined")
		}
	}
}

// BenchmarkSingleSwitchMTTR times what the same failure costs without a
// spare: the violated round, a full BIST scan to localize the fault,
// deriving the degraded configuration, and the replayed round on it —
// the single-switch mean time to repair that pool failover replaces.
func BenchmarkSingleSwitchMTTR(b *testing.B) {
	sw, err := core.NewColumnsortSwitchBeta(64, 32, 0.75)
	if err != nil {
		b.Fatal(err)
	}
	msgs := make([]switchsim.Message, 0, 16)
	for i := 0; i < 16; i++ {
		msgs = append(msgs, switchsim.Message{Input: i, Payload: []byte{1, 0, 1, 1}})
	}
	// A final-stage stuck output keeps the degraded threshold positive
	// (a dead chip's bypass would cost a full 32-port chip of ε here).
	fault := core.ChipFault{Stage: 1, Chip: 0, Mode: core.ChipStuckOutput, A: 0}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plane := core.NewFaultPlane()
		plane.Add(fault)
		if err := sw.SetFaultPlane(plane); err != nil {
			b.Fatal(err)
		}
		res, err := switchsim.Run(sw, msgs)
		if err != nil {
			b.Fatal(err)
		}
		if switchsim.CheckGuarantee(sw, msgs, res) == nil {
			b.Fatal("fault went undetected")
		}
		rep, err := health.Scan(sw)
		if err != nil {
			b.Fatal(err)
		}
		d, err := health.NewDegradedSwitch(sw, rep.Faults)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := switchsim.Run(d, msgs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHedgedTailLatency times the gray-failure tail rescue: a
// 3-replica pool whose primary carries a constant 10-round straggler
// fault serves 200 rounds with and without hedged dispatch. The
// reported p99-hedged / p99-unhedged metrics are the experiment's
// result, and the ≥ 2× p99 improvement is asserted so the benchmark
// rots loudly if hedging regresses.
func BenchmarkHedgedTailLatency(b *testing.B) {
	build := func() core.FaultInjectable {
		sw, err := core.NewColumnsortSwitchBeta(64, 32, 0.75)
		if err != nil {
			b.Fatal(err)
		}
		return sw
	}
	msgs := make([]switchsim.Message, 0, 16)
	for i := 0; i < 16; i++ {
		msgs = append(msgs, switchsim.Message{Input: i, Payload: []byte{1, 0, 1, 1}})
	}
	straggler := timing.Fault{Stage: 0, Wire: link.AllWires, Mode: timing.Constant, Delay: 10}
	run := func(hedge bool) int {
		cfg := pool.Config{}
		if hedge {
			cfg.HedgeQuantile = 0.9
			cfg.HedgeBudget = 1
		}
		p, err := pool.New(cfg, build(), build(), build())
		if err != nil {
			b.Fatal(err)
		}
		if err := p.InjectTimingFault(0, straggler); err != nil {
			b.Fatal(err)
		}
		for round := 0; round < 200; round++ {
			if _, err := p.Run(msgs); err != nil {
				b.Fatal(err)
			}
		}
		lat := p.Stats().Latency
		return lat.P99()
	}
	var up99, hp99 int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		up99 = run(false)
		hp99 = run(true)
	}
	if up99 < 11 {
		b.Fatalf("unhedged p99 %d: the straggler never showed", up99)
	}
	if hp99*2 > up99 {
		b.Fatalf("hedging improved p99 only %d → %d, want ≥ 2×", up99, hp99)
	}
	b.ReportMetric(float64(up99), "p99-unhedged")
	b.ReportMetric(float64(hp99), "p99-hedged")
}

// BenchmarkSurgeShedding times the overload-control experiment: a
// single-replica pool under a sustained 4× oversubscription serves a
// client session open loop (synchronized retries at the advertised
// RetryAfter — the metastable storm) and closed loop (retry budget,
// CoDel drain, congestion-aware admission). The reported goodput
// metrics are the experiment's result, and the ≥ 2× goodput improvement
// is asserted so the benchmark rots loudly if the control loop
// regresses.
func BenchmarkSurgeShedding(b *testing.B) {
	surge := overload.NewPlane(1)
	if err := surge.Add(overload.Fault{Mode: overload.Sustained, Factor: 4, From: 20}); err != nil {
		b.Fatal(err)
	}
	run := func(closed bool) int {
		sw, err := core.NewColumnsortSwitchBeta(64, 16, 0.75)
		if err != nil {
			b.Fatal(err)
		}
		var pc pool.Config
		sc := pool.OverloadSessionConfig{
			Rounds: 240, Load: 0.25, PayloadBits: 4, Seed: 42, Deadline: 8, Surge: surge,
		}
		if closed {
			pc.Overload = &overload.Config{BacklogFactor: 4}
			sc.Retry = &overload.RetryConfig{Budget: 0.01, BackoffBase: 1, BackoffCap: 2, Burst: 2}
			sc.CoDel = &overload.CoDelConfig{Target: 2, Interval: 4}
		}
		p, err := pool.New(pc, sw)
		if err != nil {
			b.Fatal(err)
		}
		st, err := pool.RunOverloadSession(p, sc)
		if err != nil {
			b.Fatal(err)
		}
		goodput := 0
		for _, g := range st.GoodputPerRound[120:] {
			goodput += g
		}
		return goodput
	}
	var open, closed int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		open = run(false)
		closed = run(true)
	}
	if closed < 2*max(open, 1) {
		b.Fatalf("closed-loop goodput %d not ≥ 2× open-loop %d", closed, open)
	}
	b.ReportMetric(float64(open)/120, "goodput/round-openloop")
	b.ReportMetric(float64(closed)/120, "goodput/round-closedloop")
}

// BenchmarkCrashRecovery times crash recovery — journal replay plus
// round re-execution — as a function of the snapshot interval. A
// tighter interval spends journal bytes to shorten replay; compaction
// caps the journal at O(state). Every variant must still deliver the
// exactly-once ledger.
func BenchmarkCrashRecovery(b *testing.B) {
	cfg := switchsim.SessionConfig{
		Policy: switchsim.Resend, Load: 0.5, Rounds: 120, PayloadBits: 8, Seed: 42, AckDelay: 2,
	}
	for _, bc := range []struct {
		name          string
		snapshotEvery int
		compact       bool
	}{
		{"snapshot-every-4", 4, false},
		{"snapshot-every-16", 16, false},
		{"snapshot-every-64", 64, false},
		{"compacted-16", 16, true},
	} {
		b.Run(bc.name, func(b *testing.B) {
			sw, err := core.NewColumnsortSwitchBeta(64, 32, 0.75)
			if err != nil {
				b.Fatal(err)
			}
			var rec *journal.RecoveryStats
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var stats *switchsim.SessionStats
				stats, rec, err = switchsim.RunDurableSession(sw, cfg, journal.Config{
					SnapshotEvery: bc.snapshotEvery,
					Compact:       bc.compact,
					Crash:         journal.GenerateCrashSchedule(cfg.Seed, cfg.Rounds, 6),
				})
				if err != nil {
					b.Fatal(err)
				}
				if stats.Offered != rec.TrueOffered {
					b.Fatalf("recovery lost offers: %d != %d", stats.Offered, rec.TrueOffered)
				}
			}
			b.ReportMetric(float64(rec.RecordsReplayed)/float64(rec.Crashes), "records-replayed/crash")
			b.ReportMetric(float64(rec.RoundsReexecuted)/float64(rec.Crashes), "rounds-reexecuted/crash")
			b.ReportMetric(float64(rec.JournalBytes), "journal-bytes")
		})
	}
}

// BenchmarkWitnessAudit times the byzantine settle path per round — the
// sending edge stamping every delivered frame, a misrouting liar
// rewriting claims, the receiving edge re-deriving every keyed sum
// through the full bit-stream framing, and the witness
// cross-examination re-routing the sampled claim through two spare
// replicas — against the plain unarmed booking on the same traffic.
// The spread is the per-round cost of misbehavior tolerance.
func BenchmarkWitnessAudit(b *testing.B) {
	build := func() core.FaultInjectable {
		sw, err := core.NewColumnsortSwitchBeta(64, 32, 0.75)
		if err != nil {
			b.Fatal(err)
		}
		return sw
	}
	msgs := make([]switchsim.Message, 0, 16)
	for i := 0; i < 16; i++ {
		msgs = append(msgs, switchsim.Message{Input: i, Payload: []byte{1, 0, 1, 1}})
	}
	for _, bc := range []struct {
		name  string
		armed bool
	}{
		{"plain-booking", false},
		{"verified-audited", true},
	} {
		b.Run(bc.name, func(b *testing.B) {
			cfg := pool.Config{TripThreshold: 4, ProbeAfter: 4}
			if bc.armed {
				cfg.Byzantine = pool.ByzantineConfig{Verify: true, AuditEvery: 1, Seed: 1}
			}
			p, err := pool.New(cfg, build(), build(), build())
			if err != nil {
				b.Fatal(err)
			}
			if bc.armed {
				err = p.InjectBehavior(byzantine.Fault{
					Mode: byzantine.Misroute, Replica: 0, Count: 2, From: 0, Until: 1 << 30,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rr, err := p.Run(msgs)
				if err != nil {
					b.Fatal(err)
				}
				if rr.Violated {
					b.Fatalf("round violated: %+v", rr)
				}
			}
			if bc.armed {
				s := p.Stats()
				if s.Audits == 0 {
					b.Fatal("no audits fired")
				}
				b.ReportMetric(float64(s.Audits)/float64(b.N), "audits/round")
				b.ReportMetric(float64(s.AuditDisagreements), "disagreements")
			}
		})
	}
}
