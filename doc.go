// Package concentrators reproduces T. H. Cormen, "Efficient Multichip
// Partial Concentrator Switches" (MIT-LCS-TM-322 / ICPP 1987): multichip
// partial concentrator switches built from single-chip
// hyperconcentrators via mesh-sorting algorithms (Revsort, Columnsort),
// together with every substrate the constructions depend on.
//
// The implementation lives under internal/:
//
//   - internal/core — the paper's switches (the public surface for
//     programs in this module; see the examples/ directory)
//   - internal/hyper, internal/banyan, internal/prefix, internal/logic —
//     the single-chip hyperconcentrator, functionally and at gate level
//   - internal/mesh, internal/nearsort, internal/bitvec — the sorting
//     and ε-nearsorting substrate (Lemmas 1–2, Algorithms 1–2)
//   - internal/switchsim — bit-serial clocked message simulation,
//     congestion-control sessions, fault injection
//   - internal/layout — pins / chips / boards / volume accounting
//     (Table 1, Figures 3–8)
//   - internal/shifter, internal/gatelevel, internal/seqhyper — the §4
//     barrel shifter, flat multichip netlists, and the §1 sequential
//     pipelined hyperconcentrator
//   - internal/bdd — ROBDD engine for formal all-inputs proofs
//   - internal/flow, internal/optroute — max flow and the omniscient
//     routing oracle
//   - internal/bitonic, internal/concgraph, internal/adversary,
//     internal/knockout — baselines, graph concentrators, worst-case
//     search, and the Knockout-switch application
//   - internal/health — BIST fault localization and graceful
//     degradation under a recomputed contract
//   - internal/pool, internal/chaos — the replicated switch pool
//     (health-gated failover, admission control) and its deterministic
//     chaos harness
//   - internal/bench, internal/workload — experiment harness and
//     traffic generators
//
// The root package (api.go) is the public facade for importers:
// switch constructors, bit-serial simulation, congestion sessions, and
// packaging reports. bench_test.go exposes one benchmark per table and
// figure; DESIGN.md maps each experiment to its module and
// EXPERIMENTS.md records paper-vs-measured outcomes.
package concentrators
